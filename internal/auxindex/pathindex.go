// Package auxindex implements the paper's worked example of DeltaGraph
// extensibility (Section 4.7): a subgraph-pattern-matching index over
// node-labeled graphs that materializes all simple paths of four nodes,
// keyed by their label quartet. The index is maintained historically by
// the DeltaGraph aux machinery: its AuxDF uses intersection semantics, so
// a path associated with an interior node is present in every snapshot
// below it — a path on the root existed throughout the history.
package auxindex

import (
	"strconv"
	"strings"

	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"
)

// PathLen is the indexed path length in nodes (the paper indexes paths of
// length 4).
const PathLen = 4

// PathIndex is a deltagraph.AuxIndex. It maintains its own adjacency and
// label mirror of the current graph (fed by CreateAuxEvents in event
// order), so deriving the aux events for one plain event does not rescan
// the snapshot.
type PathIndex struct {
	// LabelAttr is the node attribute holding the label ("label" if
	// empty).
	LabelAttr string

	adj    map[graph.NodeID]map[graph.NodeID]int // neighbor -> parallel edge count
	labels map[graph.NodeID]string
}

// NewPathIndex creates the index.
func NewPathIndex(labelAttr string) *PathIndex {
	if labelAttr == "" {
		labelAttr = "label"
	}
	return &PathIndex{
		LabelAttr: labelAttr,
		adj:       make(map[graph.NodeID]map[graph.NodeID]int),
		labels:    make(map[graph.NodeID]string),
	}
}

// Name implements deltagraph.AuxIndex.
func (p *PathIndex) Name() string { return "path4:" + p.LabelAttr }

// Path is one indexed occurrence: four distinct nodes connected in
// sequence.
type Path [PathLen]graph.NodeID

// Key renders the aux key for a path under the given labels:
// "l1/l2/l3/l4#n1,n2,n3,n4".
func pathKey(labels [PathLen]string, nodes Path) string {
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte('/')
		}
		sb.WriteString(l)
	}
	sb.WriteByte('#')
	for i, n := range nodes {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(int64(n), 10))
	}
	return sb.String()
}

// LabelKeyPrefix renders the lookup prefix for a label quartet.
func LabelKeyPrefix(labels [PathLen]string) string {
	return strings.Join(labels[:], "/") + "#"
}

// ParsePathKey splits an aux key back into its path.
func ParsePathKey(key string) (Path, bool) {
	var path Path
	_, ids, ok := strings.Cut(key, "#")
	if !ok {
		return path, false
	}
	parts := strings.Split(ids, ",")
	if len(parts) != PathLen {
		return path, false
	}
	for i, s := range parts {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return path, false
		}
		path[i] = graph.NodeID(v)
	}
	return path, true
}

// CreateAuxEvents implements deltagraph.AuxIndex.
func (p *PathIndex) CreateAuxEvents(ev graph.Event, _ *graph.Snapshot, _ deltagraph.AuxSnapshot) []deltagraph.AuxEvent {
	switch ev.Type {
	case graph.AddNode:
		// No paths yet; label arrives as an attribute event.
		return nil
	case graph.DelNode:
		delete(p.labels, ev.Node)
		delete(p.adj, ev.Node) // incident edges were already deleted
		return nil
	case graph.SetNodeAttr:
		if ev.Attr != p.LabelAttr {
			return nil
		}
		return p.relabel(ev)
	case graph.AddEdge:
		if ev.Node == ev.Node2 {
			return nil // self-loops form no simple path
		}
		first := p.link(ev.Node, ev.Node2) == 1
		if !first {
			return nil // a parallel edge adds no new node paths
		}
		return p.pathEvents(ev.At, ev.Node, ev.Node2, deltagraph.AuxSet)
	case graph.DelEdge:
		if ev.Node == ev.Node2 {
			return nil
		}
		// Enumerate while the edge is still in the mirror, then unlink.
		var out []deltagraph.AuxEvent
		if p.adj[ev.Node][ev.Node2] == 1 {
			out = p.pathEvents(ev.At, ev.Node, ev.Node2, deltagraph.AuxDel)
		}
		p.unlink(ev.Node, ev.Node2)
		return out
	}
	return nil
}

func (p *PathIndex) link(u, v graph.NodeID) int {
	if p.adj[u] == nil {
		p.adj[u] = make(map[graph.NodeID]int)
	}
	if p.adj[v] == nil {
		p.adj[v] = make(map[graph.NodeID]int)
	}
	p.adj[u][v]++
	p.adj[v][u] = p.adj[u][v]
	return p.adj[u][v]
}

func (p *PathIndex) unlink(u, v graph.NodeID) {
	if m := p.adj[u]; m != nil {
		if m[v] <= 1 {
			delete(m, v)
		} else {
			m[v]--
		}
	}
	if m := p.adj[v]; m != nil {
		if m[u] <= 1 {
			delete(m, u)
		} else {
			m[u]--
		}
	}
}

// relabel removes all paths through the node under its old label and
// re-adds them under the new one.
func (p *PathIndex) relabel(ev graph.Event) []deltagraph.AuxEvent {
	var out []deltagraph.AuxEvent
	if ev.HadOld {
		p.labels[ev.Node] = ev.Old
		for _, path := range p.pathsThroughNode(ev.Node) {
			out = append(out, p.pathEvent(ev.At, path, deltagraph.AuxDel))
		}
	}
	if ev.HasNew {
		p.labels[ev.Node] = ev.New
		for _, path := range p.pathsThroughNode(ev.Node) {
			out = append(out, p.pathEvent(ev.At, path, deltagraph.AuxSet))
		}
	} else {
		delete(p.labels, ev.Node)
	}
	return out
}

// pathEvent builds one aux event for a path (labels looked up live).
func (p *PathIndex) pathEvent(at graph.Time, path Path, op deltagraph.AuxOp) deltagraph.AuxEvent {
	var labels [PathLen]string
	for i, n := range path {
		labels[i] = p.labels[n]
	}
	ev := deltagraph.AuxEvent{At: at, Op: op, Key: pathKey(labels, path)}
	if op == deltagraph.AuxSet {
		ev.Val = "1"
	}
	return ev
}

// pathEvents enumerates every simple 4-node path using edge (u, v) and
// emits one aux event per direction (both directions are stored so a
// lookup never needs to reverse its quartet).
func (p *PathIndex) pathEvents(at graph.Time, u, v graph.NodeID, op deltagraph.AuxOp) []deltagraph.AuxEvent {
	var out []deltagraph.AuxEvent
	for _, path := range p.pathsThroughEdge(u, v) {
		out = append(out, p.pathEvent(at, path, op))
		out = append(out, p.pathEvent(at, Path{path[3], path[2], path[1], path[0]}, op))
	}
	return out
}

// pathsThroughEdge lists simple 4-node paths containing edge (u, v), each
// once (in one canonical direction; the caller adds the reverse).
func (p *PathIndex) pathsThroughEdge(u, v graph.NodeID) []Path {
	var out []Path
	distinct := func(a, b, c, d graph.NodeID) bool {
		return a != b && a != c && a != d && b != c && b != d && c != d
	}
	// Edge in the middle: x-u-v-y.
	for x := range p.adj[u] {
		for y := range p.adj[v] {
			if distinct(x, u, v, y) {
				out = append(out, Path{x, u, v, y})
			}
		}
	}
	// Edge at the end: u-v-x-y and v-u-x-y.
	for _, pair := range [2][2]graph.NodeID{{u, v}, {v, u}} {
		a, b := pair[0], pair[1]
		for x := range p.adj[b] {
			if x == a {
				continue
			}
			for y := range p.adj[x] {
				if distinct(a, b, x, y) {
					out = append(out, Path{a, b, x, y})
				}
			}
		}
	}
	return out
}

// pathsThroughNode lists simple 4-node paths containing n (each once per
// direction-canonical orientation; used for relabeling, where both
// directions are handled by the caller emitting per-direction keys).
func (p *PathIndex) pathsThroughNode(n graph.NodeID) []Path {
	seen := make(map[Path]struct{})
	var out []Path
	add := func(path Path) {
		if _, ok := seen[path]; !ok {
			seen[path] = struct{}{}
			out = append(out, path)
		}
	}
	// Paths where n is at each of the four positions.
	for a := range p.adj[n] {
		for _, path := range p.pathsThroughEdge(n, a) {
			add(path)
			add(Path{path[3], path[2], path[1], path[0]})
		}
	}
	return out
}

// AuxDF implements deltagraph.AuxIndex with intersection semantics: a path
// survives to the parent iff it is present in every child.
func (p *PathIndex) AuxDF(children []deltagraph.AuxSnapshot) deltagraph.AuxSnapshot {
	if len(children) == 0 {
		return deltagraph.AuxSnapshot{}
	}
	out := deltagraph.AuxSnapshot{}
	for k, v := range children[0] {
		out[k] = v
	}
	for _, c := range children[1:] {
		for k := range out {
			if _, ok := c[k]; !ok {
				delete(out, k)
			}
		}
	}
	return out
}
