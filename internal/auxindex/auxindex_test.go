package auxindex

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"
)

// labeledTrace builds a trace of labeled nodes and edges with churn.
func labeledTrace(seed int64, nodes, edges int) graph.EventList {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"A", "B", "C"}
	var events graph.EventList
	now := graph.Time(0)
	for i := 1; i <= nodes; i++ {
		now++
		events = append(events, graph.Event{Type: graph.AddNode, At: now, Node: graph.NodeID(i)})
		events = append(events, graph.Event{Type: graph.SetNodeAttr, At: now, Node: graph.NodeID(i), Attr: "label", New: labels[rng.Intn(len(labels))], HasNew: true})
	}
	type edgeRec struct {
		id   graph.EdgeID
		u, v graph.NodeID
	}
	var live []edgeRec
	nextEdge := graph.EdgeID(0)
	for i := 0; i < edges; i++ {
		now++
		if rng.Intn(5) == 0 && len(live) > 0 {
			j := rng.Intn(len(live))
			e := live[j]
			live = append(live[:j], live[j+1:]...)
			events = append(events, graph.Event{Type: graph.DelEdge, At: now, Edge: e.id, Node: e.u, Node2: e.v})
			continue
		}
		u := graph.NodeID(rng.Intn(nodes) + 1)
		v := graph.NodeID(rng.Intn(nodes) + 1)
		if u == v {
			continue
		}
		nextEdge++
		live = append(live, edgeRec{nextEdge, u, v})
		events = append(events, graph.Event{Type: graph.AddEdge, At: now, Edge: nextEdge, Node: u, Node2: v})
	}
	return events
}

// refPaths enumerates all simple 4-node paths (both directions) of the
// reference snapshot, keyed like the index.
func refPaths(s *graph.Snapshot) map[string]struct{} {
	adj := map[graph.NodeID]map[graph.NodeID]bool{}
	for _, info := range s.Edges {
		if info.From == info.To {
			continue
		}
		if adj[info.From] == nil {
			adj[info.From] = map[graph.NodeID]bool{}
		}
		if adj[info.To] == nil {
			adj[info.To] = map[graph.NodeID]bool{}
		}
		adj[info.From][info.To] = true
		adj[info.To][info.From] = true
	}
	label := func(n graph.NodeID) string { return s.NodeAttrs[n]["label"] }
	out := map[string]struct{}{}
	for a := range adj {
		for b := range adj[a] {
			for c := range adj[b] {
				if c == a {
					continue
				}
				for d := range adj[c] {
					if d == a || d == b {
						continue
					}
					key := fmt.Sprintf("%s/%s/%s/%s#%d,%d,%d,%d",
						label(a), label(b), label(c), label(d), a, b, c, d)
					out[key] = struct{}{}
				}
			}
		}
	}
	return out
}

func buildIndexed(t *testing.T, events graph.EventList) (*deltagraph.DeltaGraph, *PathIndex) {
	t.Helper()
	idx := NewPathIndex("label")
	dg, err := deltagraph.Build(events, deltagraph.Options{
		LeafSize: 120, Arity: 3, AuxIndexes: []deltagraph.AuxIndex{idx},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dg, idx
}

func TestPathIndexMatchesReferenceOverHistory(t *testing.T) {
	events := labeledTrace(1, 14, 220)
	dg, idx := buildIndexed(t, events)
	_, last := events.Span()
	for i := 1; i <= 6; i++ {
		q := last * graph.Time(i) / 6
		aux, err := dg.GetAuxSnapshot(idx.Name(), q)
		if err != nil {
			t.Fatal(err)
		}
		want := refPaths(graph.SnapshotAt(events, q))
		if len(aux) != len(want) {
			t.Fatalf("t=%d: %d indexed paths, want %d", q, len(aux), len(want))
		}
		for k := range aux {
			if _, ok := want[k]; !ok {
				t.Fatalf("t=%d: spurious path %s", q, k)
			}
		}
	}
}

func TestFindPaths(t *testing.T) {
	// A fixed path A-B-C-A plus noise.
	events := graph.EventList{}
	now := graph.Time(0)
	addNode := func(id graph.NodeID, label string) {
		now++
		events = append(events,
			graph.Event{Type: graph.AddNode, At: now, Node: id},
			graph.Event{Type: graph.SetNodeAttr, At: now, Node: id, Attr: "label", New: label, HasNew: true})
	}
	addEdge := func(eid graph.EdgeID, u, v graph.NodeID) {
		now++
		events = append(events, graph.Event{Type: graph.AddEdge, At: now, Edge: eid, Node: u, Node2: v})
	}
	addNode(1, "A")
	addNode(2, "B")
	addNode(3, "C")
	addNode(4, "A")
	addNode(5, "Z")
	addEdge(1, 1, 2)
	addEdge(2, 2, 3)
	addEdge(3, 3, 4)
	addEdge(4, 4, 5)

	dg, idx := buildIndexed(t, events)
	m := &Matcher{DG: dg, Index: idx}
	paths, err := m.FindPaths(now, [4]string{"A", "B", "C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != (Path{1, 2, 3, 4}) {
		t.Errorf("paths = %v", paths)
	}
	// Reverse direction is stored under the reversed key.
	rev, err := m.FindPaths(now, [4]string{"A", "C", "B", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rev) != 1 || rev[0] != (Path{4, 3, 2, 1}) {
		t.Errorf("reverse paths = %v", rev)
	}
	// Non-existent quartet.
	none, _ := m.FindPaths(now, [4]string{"Z", "Z", "Z", "Z"})
	if len(none) != 0 {
		t.Error("phantom paths found")
	}
}

func TestPatternMatch(t *testing.T) {
	// Data: a square A-B-A-B (1-2-3-4-1) with a diagonal pendant.
	events := graph.EventList{}
	now := graph.Time(0)
	add := func(id graph.NodeID, label string) {
		now++
		events = append(events,
			graph.Event{Type: graph.AddNode, At: now, Node: id},
			graph.Event{Type: graph.SetNodeAttr, At: now, Node: id, Attr: "label", New: label, HasNew: true})
	}
	edge := func(eid graph.EdgeID, u, v graph.NodeID) {
		now++
		events = append(events, graph.Event{Type: graph.AddEdge, At: now, Edge: eid, Node: u, Node2: v})
	}
	add(1, "A")
	add(2, "B")
	add(3, "A")
	add(4, "B")
	edge(1, 1, 2)
	edge(2, 2, 3)
	edge(3, 3, 4)
	edge(4, 4, 1)

	dg, idx := buildIndexed(t, events)
	m := &Matcher{DG: dg, Index: idx}

	// Pattern: the 4-cycle A-B-A-B.
	cycle := &Pattern{
		Labels: map[graph.NodeID]string{10: "A", 11: "B", 12: "A", 13: "B"},
		Edges:  [][2]graph.NodeID{{10, 11}, {11, 12}, {12, 13}, {13, 10}},
	}
	matches, err := m.Match(now, cycle)
	if err != nil {
		t.Fatal(err)
	}
	// The square is found; symmetric rebindings are distinct matches
	// (4 rotations x 2 directions... constrained by labels: A nodes can
	// bind 2 ways x B nodes 2 ways = 4).
	if len(matches) != 4 {
		t.Errorf("cycle matches = %d, want 4: %v", len(matches), matches)
	}
	for _, match := range matches {
		if len(match) != 4 {
			t.Errorf("incomplete binding %v", match)
		}
	}

	// A pattern absent from the data.
	tri := &Pattern{
		Labels: map[graph.NodeID]string{1: "A", 2: "A", 3: "A", 4: "A"},
		Edges:  [][2]graph.NodeID{{1, 2}, {2, 3}, {3, 4}},
	}
	matches, err = m.Match(now, tri)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("phantom matches: %v", matches)
	}

	// Pattern without a 4-node path is rejected.
	small := &Pattern{Labels: map[graph.NodeID]string{1: "A", 2: "B"}, Edges: [][2]graph.NodeID{{1, 2}}}
	if _, err := m.Match(now, small); err == nil {
		t.Error("small pattern accepted")
	}
}

func TestMatchHistoryCounts(t *testing.T) {
	events := labeledTrace(2, 12, 150)
	dg, idx := buildIndexed(t, events)
	m := &Matcher{DG: dg, Index: idx}
	pat := &Pattern{
		Labels: map[graph.NodeID]string{1: "A", 2: "B", 3: "C", 4: "A"},
		Edges:  [][2]graph.NodeID{{1, 2}, {2, 3}, {3, 4}},
	}
	times := dg.LeafTimes()
	total, err := m.MatchHistory(times, pat)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check one timepoint against a direct index scan: a pure path
	// pattern's matches are exactly the indexed paths with that quartet.
	paths, err := m.FindPaths(times[len(times)/2], [4]string{"A", "B", "C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.Match(times[len(times)/2], pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(paths) {
		t.Errorf("path-pattern matches = %d, index paths = %d", len(direct), len(paths))
	}
	_ = total // total varies with the random trace; correctness is checked above
}

func TestRelabeling(t *testing.T) {
	events := graph.EventList{}
	now := graph.Time(0)
	add := func(id graph.NodeID, label string) {
		now++
		events = append(events,
			graph.Event{Type: graph.AddNode, At: now, Node: id},
			graph.Event{Type: graph.SetNodeAttr, At: now, Node: id, Attr: "label", New: label, HasNew: true})
	}
	edge := func(eid graph.EdgeID, u, v graph.NodeID) {
		now++
		events = append(events, graph.Event{Type: graph.AddEdge, At: now, Edge: eid, Node: u, Node2: v})
	}
	add(1, "A")
	add(2, "B")
	add(3, "C")
	add(4, "D")
	edge(1, 1, 2)
	edge(2, 2, 3)
	edge(3, 3, 4)
	relabelAt := now + 1
	events = append(events, graph.Event{Type: graph.SetNodeAttr, At: relabelAt, Node: 2, Attr: "label", Old: "B", HadOld: true, New: "X", HasNew: true})

	dg, idx := buildIndexed(t, events)
	m := &Matcher{DG: dg, Index: idx}
	before, _ := m.FindPaths(relabelAt-1, [4]string{"A", "B", "C", "D"})
	if len(before) != 1 {
		t.Fatalf("before relabel: %v", before)
	}
	gone, _ := m.FindPaths(relabelAt, [4]string{"A", "B", "C", "D"})
	if len(gone) != 0 {
		t.Error("old-label path survived relabeling")
	}
	after, _ := m.FindPaths(relabelAt, [4]string{"A", "X", "C", "D"})
	if len(after) != 1 {
		t.Error("new-label path missing after relabeling")
	}
}

func TestParsePathKey(t *testing.T) {
	key := pathKey([4]string{"A", "B", "C", "D"}, Path{1, 2, 3, 4})
	if !strings.HasPrefix(key, "A/B/C/D#") {
		t.Errorf("key = %q", key)
	}
	path, ok := ParsePathKey(key)
	if !ok || path != (Path{1, 2, 3, 4}) {
		t.Errorf("parse = %v %v", path, ok)
	}
	for _, bad := range []string{"", "A/B#1,2", "A/B/C/D#1,2,3", "A/B/C/D#1,2,3,x"} {
		if _, ok := ParsePathKey(bad); ok {
			t.Errorf("bad key %q accepted", bad)
		}
	}
}
