package csr

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"historygraph/internal/graph"
)

// fakeSource is a Source over explicit node and edge lists, standing in
// for a pinned view: nodes may be referenced by edges without existing
// (ghost endpoints), and multi-edges between one pair are legal.
type fakeSource struct {
	at    graph.Time
	nodes []graph.NodeID
	edges []graph.EdgeInfo
}

func (f *fakeSource) At() graph.Time { return f.at }
func (f *fakeSource) NumNodes() int  { return len(f.nodes) }
func (f *fakeSource) NumEdges() int  { return len(f.edges) }
func (f *fakeSource) ForEachNode(fn func(graph.NodeID) bool) {
	for _, n := range f.nodes {
		if !fn(n) {
			return
		}
	}
}
func (f *fakeSource) ForEachEdge(fn func(graph.EdgeID, graph.EdgeInfo) bool) {
	for i, e := range f.edges {
		if !fn(graph.EdgeID(i), e) {
			return
		}
	}
}

// randomSource builds a deterministic random graph with ghosts, self-loops
// and multi-edges — every corner the CSR must normalize away.
func randomSource(seed int64, nodes, edges int) *fakeSource {
	rng := rand.New(rand.NewSource(seed))
	src := &fakeSource{at: 7}
	for n := 0; n < nodes; n++ {
		if rng.Intn(4) > 0 { // every fourth ID stays a ghost
			src.nodes = append(src.nodes, graph.NodeID(n))
		}
	}
	for i := 0; i < edges; i++ {
		from := graph.NodeID(rng.Intn(nodes))
		to := graph.NodeID(rng.Intn(nodes))
		src.edges = append(src.edges, graph.EdgeInfo{From: from, To: to, Directed: rng.Intn(2) == 0})
		if rng.Intn(8) == 0 { // occasional exact duplicate (multi-edge)
			src.edges = append(src.edges, graph.EdgeInfo{From: from, To: to})
		}
	}
	return src
}

// refAdjacency computes the expected row set by brute force: distinct
// undirected adjacency per endpoint, a self-loop contributing one entry.
func refAdjacency(src *fakeSource) (rows map[graph.NodeID]map[graph.NodeID]bool, exists map[graph.NodeID]bool) {
	rows = map[graph.NodeID]map[graph.NodeID]bool{}
	exists = map[graph.NodeID]bool{}
	touch := func(n graph.NodeID) {
		if rows[n] == nil {
			rows[n] = map[graph.NodeID]bool{}
		}
	}
	for _, n := range src.nodes {
		touch(n)
		exists[n] = true
	}
	for _, e := range src.edges {
		touch(e.From)
		touch(e.To)
		rows[e.From][e.To] = true
		rows[e.To][e.From] = true
	}
	return rows, exists
}

func TestBuildMatchesBruteForce(t *testing.T) {
	src := randomSource(1, 80, 200)
	g := Build(src)
	rows, exists := refAdjacency(src)

	if g.At() != src.at {
		t.Fatalf("At = %d, want %d", g.At(), src.at)
	}
	if g.NumNodes() != len(src.nodes) {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), len(src.nodes))
	}
	if g.NumEdges() != len(src.edges) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(src.edges))
	}
	if g.NumRows() != len(rows) {
		t.Fatalf("NumRows = %d, want %d", g.NumRows(), len(rows))
	}

	seen := map[graph.NodeID]bool{}
	prev := graph.NodeID(-1 << 62)
	g.ForEachRow(func(id graph.NodeID, ex bool, nbrs []graph.NodeID) bool {
		if id <= prev {
			t.Fatalf("rows out of order: %d after %d", id, prev)
		}
		prev = id
		seen[id] = true
		if ex != exists[id] {
			t.Fatalf("row %d exists = %t, want %t", id, ex, exists[id])
		}
		want := make([]graph.NodeID, 0, len(rows[id]))
		for nb := range rows[id] {
			want = append(want, nb)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) == 0 {
			want = nil
		}
		var got []graph.NodeID
		if len(nbrs) > 0 {
			got = append(got, nbrs...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("row %d adjacency = %v, want %v", id, got, want)
		}
		if g.Degree(id) != len(want) {
			t.Fatalf("Degree(%d) = %d, want %d", id, g.Degree(id), len(want))
		}
		if !reflect.DeepEqual(append([]graph.NodeID(nil), g.Neighbors(id)...), append([]graph.NodeID(nil), nbrs...)) {
			t.Fatalf("Neighbors(%d) disagrees with its row", id)
		}
		return true
	})
	if len(seen) != len(rows) {
		t.Fatalf("walked %d rows, want %d", len(seen), len(rows))
	}

	for id := range rows {
		if g.HasNode(id) != exists[id] {
			t.Fatalf("HasNode(%d) = %t, want %t", id, g.HasNode(id), exists[id])
		}
	}
	if g.HasNode(1<<40) || g.Degree(1<<40) != 0 || g.Neighbors(1<<40) != nil {
		t.Fatal("absent ID must have no row")
	}

	nodeCount := 0
	g.ForEachNode(func(n graph.NodeID) bool {
		if !exists[n] {
			t.Fatalf("ForEachNode visited ghost %d", n)
		}
		nodeCount++
		return true
	})
	if nodeCount != g.NumNodes() {
		t.Fatalf("ForEachNode visited %d, want %d", nodeCount, g.NumNodes())
	}
	if g.MemBytes() <= 0 {
		t.Fatal("MemBytes must be positive for a non-empty graph")
	}
}

func TestBuildEmpty(t *testing.T) {
	g := Build(&fakeSource{at: 3})
	if g.NumRows() != 0 || g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty build has rows: %d/%d/%d", g.NumRows(), g.NumNodes(), g.NumEdges())
	}
	g.ForEachRow(func(graph.NodeID, bool, []graph.NodeID) bool {
		t.Fatal("empty CSR visited a row")
		return false
	})
}

func TestBuildSelfLoopAndEarlyStop(t *testing.T) {
	src := &fakeSource{
		nodes: []graph.NodeID{1, 2, 3},
		edges: []graph.EdgeInfo{{From: 2, To: 2}, {From: 1, To: 3}},
	}
	g := Build(src)
	if got := g.Neighbors(2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("self-loop row = %v, want [2]", got)
	}
	visits := 0
	g.ForEachRow(func(graph.NodeID, bool, []graph.NodeID) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("early stop visited %d rows", visits)
	}
	visits = 0
	g.ForEachNode(func(graph.NodeID) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("early node stop visited %d", visits)
	}
}
