// Package csr materializes a pinned graph view into a compact CSR-style
// (compressed sparse row) snapshot: one sorted ID array, one adjacency
// array, and per-row offsets — the LLAMA-style read-optimized layout the
// analytics scan path iterates instead of walking the pool's per-edge
// hash maps and overlay bitmaps. A build pays the view walk once; every
// scan after that is sequential array traversal with no locks, no bitmap
// membership tests, and no per-node map lookups, which is what makes
// whole-graph algorithms (degree distribution, connected components,
// PageRank supersteps) cheap enough to serve online.
//
// A Graph is immutable once built, so it is shared freely across
// requests; the serving layer caches builds keyed like the view cache and
// invalidates them under the same generation guard (an append at time t
// evicts every CSR at >= t, plus current-dependent ones).
package csr

import (
	"sort"

	"historygraph/internal/graph"
)

// Source is the view shape a CSR build walks; graphpool.View satisfies it
// directly.
type Source interface {
	At() graph.Time
	NumNodes() int
	NumEdges() int
	ForEachNode(fn func(graph.NodeID) bool)
	ForEachEdge(fn func(graph.EdgeID, graph.EdgeInfo) bool)
}

// Graph is the materialized snapshot. Rows exist for every ID that is a
// node of the snapshot or an endpoint of one of its edges — a partition's
// slice legitimately stores edges whose far endpoint lives on another
// partition (or was never added), and those ghost endpoints keep a row
// (with Exists false) so distributed scans can classify every adjacency
// pair. Adjacency rows are sorted and deduplicated: row u holds the
// distinct IDs adjacent to u, exactly the set View.Neighbors(u) returns
// (directed edges traversable both ways, a self-loop contributing u to
// its own row once).
type Graph struct {
	at       graph.Time
	numNodes int // nodes of the snapshot (rows with exists=true)
	numEdges int // edges of the source view (multi-edges included)

	ids     []graph.NodeID // all row IDs, ascending
	exists  []bool         // ids[i] is a node of the snapshot
	offsets []int          // row i is targets[offsets[i]:offsets[i+1]]
	targets []graph.NodeID // concatenated adjacency rows, each sorted+deduped
}

// Build materializes src. The source is walked exactly twice (nodes, then
// edges); the caller may release its view as soon as Build returns.
func Build(src Source) *Graph {
	g := &Graph{at: src.At(), numNodes: src.NumNodes(), numEdges: src.NumEdges()}
	present := make(map[graph.NodeID]bool, g.numNodes)
	src.ForEachNode(func(n graph.NodeID) bool {
		present[n] = true
		return true
	})
	ends := make([][2]graph.NodeID, 0, g.numEdges)
	src.ForEachEdge(func(_ graph.EdgeID, info graph.EdgeInfo) bool {
		ends = append(ends, [2]graph.NodeID{info.From, info.To})
		if _, ok := present[info.From]; !ok {
			present[info.From] = false
		}
		if _, ok := present[info.To]; !ok {
			present[info.To] = false
		}
		return true
	})
	g.ids = make([]graph.NodeID, 0, len(present))
	for id := range present {
		g.ids = append(g.ids, id)
	}
	sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
	index := make(map[graph.NodeID]int, len(g.ids))
	g.exists = make([]bool, len(g.ids))
	for i, id := range g.ids {
		index[id] = i
		g.exists[i] = present[id]
	}
	// Count row widths, then fill; a self-loop lands one entry (u in u's
	// own row), matching View.Neighbors' Other(u) == u case.
	counts := make([]int, len(g.ids))
	for _, e := range ends {
		fi, ti := index[e[0]], index[e[1]]
		counts[fi]++
		if fi != ti {
			counts[ti]++
		}
	}
	g.offsets = make([]int, len(g.ids)+1)
	for i, c := range counts {
		g.offsets[i+1] = g.offsets[i] + c
	}
	g.targets = make([]graph.NodeID, g.offsets[len(g.ids)])
	cursor := make([]int, len(g.ids))
	copy(cursor, g.offsets[:len(g.ids)])
	for _, e := range ends {
		fi, ti := index[e[0]], index[e[1]]
		g.targets[cursor[fi]] = e[1]
		cursor[fi]++
		if fi != ti {
			g.targets[cursor[ti]] = e[0]
			cursor[ti]++
		}
	}
	// Sort and dedup each row in place (multi-edges between one pair
	// collapse to one adjacency, as View.Neighbors dedups), compacting the
	// target array left as rows shrink.
	w := 0
	for i := range g.ids {
		row := g.targets[g.offsets[i]:g.offsets[i+1]]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		start := w
		for j, v := range row {
			if j == 0 || v != row[j-1] {
				g.targets[w] = v
				w++
			}
		}
		g.offsets[i] = start
	}
	g.offsets[len(g.ids)] = w
	g.targets = g.targets[:w:w]
	return g
}

// At returns the timepoint the snapshot answers for.
func (g *Graph) At() graph.Time { return g.at }

// NumNodes returns how many nodes the snapshot has (ghost endpoints are
// not nodes).
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges returns the source view's edge count (multi-edges included;
// the adjacency rows themselves are deduplicated).
func (g *Graph) NumEdges() int { return g.numEdges }

// find returns the row index of n and whether a row exists.
func (g *Graph) find(n graph.NodeID) (int, bool) {
	i := sort.Search(len(g.ids), func(i int) bool { return g.ids[i] >= n })
	return i, i < len(g.ids) && g.ids[i] == n
}

// HasNode reports whether n is a node of the snapshot.
func (g *Graph) HasNode(n graph.NodeID) bool {
	i, ok := g.find(n)
	return ok && g.exists[i]
}

// ForEachNode visits the snapshot's nodes in ascending ID order;
// returning false stops the walk.
func (g *Graph) ForEachNode(fn func(graph.NodeID) bool) {
	for i, id := range g.ids {
		if g.exists[i] && !fn(id) {
			return
		}
	}
}

// Neighbors returns the distinct IDs adjacent to n, sorted ascending. The
// returned slice aliases the CSR and must not be mutated.
func (g *Graph) Neighbors(n graph.NodeID) []graph.NodeID {
	i, ok := g.find(n)
	if !ok {
		return nil
	}
	return g.targets[g.offsets[i]:g.offsets[i+1]]
}

// ForEachNeighbor visits n's distinct neighbors in ascending order.
func (g *Graph) ForEachNeighbor(n graph.NodeID, fn func(graph.NodeID) bool) {
	for _, nb := range g.Neighbors(n) {
		if !fn(nb) {
			return
		}
	}
}

// Degree returns the number of distinct IDs adjacent to n.
func (g *Graph) Degree(n graph.NodeID) int {
	i, ok := g.find(n)
	if !ok {
		return 0
	}
	return g.offsets[i+1] - g.offsets[i]
}

// ForEachRow visits every row — snapshot nodes and ghost endpoints alike
// — in ascending ID order with its sorted adjacency. The nbrs slice
// aliases the CSR and must not be mutated or retained. Returning false
// stops the walk. Distributed scans use this to classify every adjacency
// pair (internal vs cross-partition) in one sequential pass.
func (g *Graph) ForEachRow(fn func(id graph.NodeID, exists bool, nbrs []graph.NodeID) bool) {
	for i, id := range g.ids {
		if !fn(id, g.exists[i], g.targets[g.offsets[i]:g.offsets[i+1]]) {
			return
		}
	}
}

// NumRows returns how many rows the CSR holds (nodes plus ghost
// endpoints).
func (g *Graph) NumRows() int { return len(g.ids) }

// MemBytes estimates the resident size of the materialized form (the
// cache capacity gauge's complement when sizing CSRCacheSize).
func (g *Graph) MemBytes() int {
	return 8*len(g.ids) + len(g.exists) + 8*len(g.offsets) + 8*len(g.targets)
}
