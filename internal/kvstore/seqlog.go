package kvstore

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// SeqLog is a durable sequenced record stream layered on FileStore's
// CRC-checked append-only format: records carry contiguous uint64 sequence
// numbers starting at 1, each stored under its big-endian sequence key.
// It is the storage substrate of the replication write-ahead log
// (internal/replica): FileStore's recovery already drops a torn or corrupt
// tail on open, so every record synced before a crash replays and nothing
// after the tear does.
//
// A SeqLog is safe for concurrent use.
type SeqLog struct {
	fs   *FileStore
	last atomic.Uint64
}

// OpenSeqLog opens or creates the sequenced log at path and recovers the
// highest stored sequence number. Sequence numbers are verified contiguous
// from 1 (records are only ever appended, never deleted).
func OpenSeqLog(path string, opts FileOptions) (*SeqLog, error) {
	fs, err := OpenFileStore(path, opts)
	if err != nil {
		return nil, err
	}
	var max uint64
	count := 0
	bad := false
	fs.ForEachKey(func(key []byte) bool {
		if len(key) != 8 {
			bad = true
			return false
		}
		if seq := binary.BigEndian.Uint64(key); seq > max {
			max = seq
		}
		count++
		return true
	})
	if bad || uint64(count) != max {
		fs.Close()
		return nil, fmt.Errorf("kvstore: %s is not a contiguous sequenced log (%d records, max seq %d)", path, count, max)
	}
	l := &SeqLog{fs: fs}
	l.last.Store(max)
	return l, nil
}

func seqKey(seq uint64) []byte {
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], seq)
	return key[:]
}

// Append stores payload under the next sequence number and returns it.
// The record is buffered; call Sync to make it durable.
func (l *SeqLog) Append(payload []byte) (uint64, error) {
	l.fs.mu.Lock()
	defer l.fs.mu.Unlock()
	return l.appendLocked(l.last.Load()+1, payload)
}

// AppendAt stores payload under an explicit sequence number, which must be
// exactly Last()+1 — a replication follower mirroring a primary's log uses
// this to keep the two logs byte-by-record identical.
func (l *SeqLog) AppendAt(seq uint64, payload []byte) (uint64, error) {
	l.fs.mu.Lock()
	defer l.fs.mu.Unlock()
	if want := l.last.Load() + 1; seq != want {
		return 0, fmt.Errorf("kvstore: sequence gap: appending %d, want %d", seq, want)
	}
	return l.appendLocked(seq, payload)
}

// appendLocked writes one record; the caller holds the store's write lock
// and has validated seq.
func (l *SeqLog) appendLocked(seq uint64, payload []byte) (uint64, error) {
	loc, err := l.fs.appendRecord(seqKey(seq), payload, 0)
	if err != nil {
		return 0, err
	}
	l.fs.index[string(seqKey(seq))] = loc
	l.fs.liveKeys++
	l.last.Store(seq)
	return seq, nil
}

// Get returns the payload stored under seq, or ErrNotFound.
func (l *SeqLog) Get(seq uint64) ([]byte, error) {
	return l.fs.Get(seqKey(seq))
}

// Last returns the highest stored sequence number (0 when empty).
func (l *SeqLog) Last() uint64 { return l.last.Load() }

// Sync flushes buffered records to stable storage. An appended record is
// guaranteed to survive a crash only after Sync returns.
func (l *SeqLog) Sync() error { return l.fs.Sync() }

// SetSyncObserver forwards to the underlying FileStore's sync observer
// (see FileStore.SetSyncObserver).
func (l *SeqLog) SetSyncObserver(fn func(time.Duration)) { l.fs.SetSyncObserver(fn) }

// SizeOnDisk returns the log's backing file footprint in bytes.
func (l *SeqLog) SizeOnDisk() int64 { return l.fs.SizeOnDisk() }

// Reset discards every record and rewinds the sequence to 0 (the next
// Append stores seq 1). The replica truncate-and-resync path uses it to
// drop a diverged log before re-mirroring the authoritative history.
func (l *SeqLog) Reset() error {
	l.fs.mu.Lock()
	defer l.fs.mu.Unlock()
	if err := l.fs.resetLocked(); err != nil {
		return err
	}
	l.last.Store(0)
	return nil
}

// Close releases the underlying file. The log must not be used afterwards.
func (l *SeqLog) Close() error { return l.fs.Close() }
