package kvstore

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FileStore is a disk-based Store: an append-only log of CRC-checked
// records with an in-memory index from key to value location. It plays the
// role Kyoto Cabinet played in the paper's prototype: a persistent,
// compressed, fast get/put engine.
//
// Record layout (all integers little-endian or uvarint):
//
//	uvarint keyLen | uvarint storedValLen | byte flags | key | val | uint32 crc
//
// flags bit 0 = tombstone, bit 1 = value is flate-compressed. The CRC covers
// everything before it. On open the log is scanned to rebuild the index;
// a torn or corrupt tail (e.g. after a crash) is detected by the CRC and
// ignored, so every previously synced record remains readable.
type FileStore struct {
	mu       sync.RWMutex
	f        *os.File
	w        *bufio.Writer
	off      int64 // next append offset
	dirty    bool  // buffered records not yet flushed
	index    map[string]recordLoc
	liveKeys int
	opts     FileOptions

	syncObs atomic.Pointer[func(time.Duration)]
}

// SetSyncObserver registers fn to be called with the wall time of every
// Sync call (buffer flush plus fsync). The replication WAL layers its
// fsync-latency metrics on this hook, keeping kvstore itself
// metrics-agnostic. Pass nil to remove the observer. Safe to call
// concurrently with Sync.
func (s *FileStore) SetSyncObserver(fn func(time.Duration)) {
	if fn == nil {
		s.syncObs.Store(nil)
		return
	}
	s.syncObs.Store(&fn)
}

type recordLoc struct {
	valOff     int64
	valLen     int32
	compressed bool
}

// FileOptions configures a FileStore.
type FileOptions struct {
	// Compress enables flate compression of values of at least
	// CompressMin bytes (mirrors Kyoto Cabinet's built-in compression,
	// which the paper's Dataset 3 index relied on).
	Compress bool
	// CompressMin is the minimum value size to attempt compression for.
	// Zero means 64 bytes.
	CompressMin int
}

const fileMagic = "HGKV1\n"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// OpenFileStore opens or creates the log at path and rebuilds the key index
// by scanning it.
func OpenFileStore(path string, opts FileOptions) (*FileStore, error) {
	if opts.CompressMin == 0 {
		opts.CompressMin = 64
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &FileStore{
		f:     f,
		index: make(map[string]recordLoc),
		opts:  opts,
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(s.off, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	s.w = bufio.NewWriterSize(f, 1<<16)
	return s, nil
}

// recover scans the log, rebuilding the index and determining the append
// offset. It stops at the first torn or corrupt record.
func (s *FileStore) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, 0, size), 1<<16)
	if size == 0 {
		if _, err := s.f.WriteString(fileMagic); err != nil {
			return err
		}
		s.off = int64(len(fileMagic))
		return nil
	}
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != fileMagic {
		return fmt.Errorf("kvstore: %s is not a FileStore log", s.f.Name())
	}
	off := int64(len(fileMagic))
	for {
		loc, key, tombstone, next, err := readRecord(r, off)
		if err != nil {
			// Torn/corrupt tail: keep everything before it.
			break
		}
		if tombstone {
			if _, ok := s.index[key]; ok {
				delete(s.index, key)
				s.liveKeys--
			}
		} else {
			if _, ok := s.index[key]; !ok {
				s.liveKeys++
			}
			s.index[key] = loc
		}
		off = next
	}
	s.off = off
	return nil
}

// readRecord parses one record starting at offset off. It returns the value
// location, the key, the tombstone flag and the offset of the next record.
func readRecord(r *bufio.Reader, off int64) (recordLoc, string, bool, int64, error) {
	crc := crc32.New(crcTable)
	tee := io.TeeReader(r, crc)
	br := &byteCountReader{r: tee}
	keyLen, err := binary.ReadUvarint(br)
	if err != nil {
		return recordLoc{}, "", false, 0, err
	}
	valLen, err := binary.ReadUvarint(br)
	if err != nil {
		return recordLoc{}, "", false, 0, err
	}
	if keyLen > 1<<20 || valLen > 1<<31 {
		return recordLoc{}, "", false, 0, fmt.Errorf("kvstore: implausible record header")
	}
	flags, err := br.ReadByte()
	if err != nil {
		return recordLoc{}, "", false, 0, err
	}
	keyBuf := make([]byte, keyLen)
	if _, err := io.ReadFull(br, keyBuf); err != nil {
		return recordLoc{}, "", false, 0, err
	}
	headerLen := br.n // bytes consumed by header + key
	valOff := off + headerLen
	if _, err := io.CopyN(io.Discard, br, int64(valLen)); err != nil {
		return recordLoc{}, "", false, 0, err
	}
	want := crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return recordLoc{}, "", false, 0, err
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != want {
		return recordLoc{}, "", false, 0, fmt.Errorf("kvstore: crc mismatch")
	}
	loc := recordLoc{valOff: valOff, valLen: int32(valLen), compressed: flags&2 != 0}
	return loc, string(keyBuf), flags&1 != 0, valOff + int64(valLen) + 4, nil
}

type byteCountReader struct {
	r io.Reader
	n int64
}

func (b *byteCountReader) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

func (b *byteCountReader) ReadByte() (byte, error) {
	var one [1]byte
	if _, err := io.ReadFull(b.r, one[:]); err != nil {
		return 0, err
	}
	b.n++
	return one[0], nil
}

// Get implements Store.
func (s *FileStore) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	if s.dirty {
		// Unwritten records must reach the file before ReadAt can see
		// them; flushing needs the write lock.
		s.mu.RUnlock()
		s.mu.Lock()
		if s.dirty {
			if err := s.w.Flush(); err != nil {
				s.mu.Unlock()
				return nil, err
			}
			s.dirty = false
		}
		s.mu.Unlock()
		s.mu.RLock()
	}
	loc, ok := s.index[string(key)]
	if !ok {
		s.mu.RUnlock()
		return nil, ErrNotFound
	}
	s.mu.RUnlock()

	buf := make([]byte, loc.valLen)
	if _, err := s.f.ReadAt(buf, loc.valOff); err != nil {
		return nil, err
	}
	if !loc.compressed {
		return buf, nil
	}
	fr := flate.NewReader(bytes.NewReader(buf))
	defer fr.Close()
	return io.ReadAll(fr)
}

// Put implements Store.
func (s *FileStore) Put(key, value []byte) error {
	stored := value
	compressed := false
	if s.opts.Compress && len(value) >= s.opts.CompressMin {
		var cbuf bytes.Buffer
		fw, err := flate.NewWriter(&cbuf, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := fw.Write(value); err != nil {
			return err
		}
		if err := fw.Close(); err != nil {
			return err
		}
		if cbuf.Len() < len(value) {
			stored = cbuf.Bytes()
			compressed = true
		}
	}
	var flags byte
	if compressed {
		flags |= 2
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, err := s.appendRecord(key, stored, flags)
	if err != nil {
		return err
	}
	if _, ok := s.index[string(key)]; !ok {
		s.liveKeys++
	}
	s.index[string(key)] = loc
	return nil
}

// Delete implements Store. A tombstone record is appended so the deletion
// survives reopen.
func (s *FileStore) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[string(key)]; !ok {
		return nil
	}
	if _, err := s.appendRecord(key, nil, 1); err != nil {
		return err
	}
	delete(s.index, string(key))
	s.liveKeys--
	return nil
}

// appendRecord writes one record; the caller holds the write lock.
func (s *FileStore) appendRecord(key, val []byte, flags byte) (recordLoc, error) {
	var hdr [2*binary.MaxVarintLen64 + 1]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(val)))
	hdr[n] = flags
	n++

	crc := crc32.New(crcTable)
	crc.Write(hdr[:n])
	crc.Write(key)
	crc.Write(val)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())

	valOff := s.off + int64(n) + int64(len(key))
	for _, part := range [][]byte{hdr[:n], key, val, crcBuf[:]} {
		if _, err := s.w.Write(part); err != nil {
			return recordLoc{}, err
		}
	}
	s.off = valOff + int64(len(val)) + 4
	s.dirty = true
	return recordLoc{valOff: valOff, valLen: int32(len(val)), compressed: flags&2 != 0}, nil
}

// ForEachKey calls fn for every live key in unspecified order, stopping if
// fn returns false. The key slice is shared; fn must not retain or mutate
// it. SeqLog uses this to recover its sequence bound on open.
func (s *FileStore) ForEachKey(fn func(key []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k := range s.index {
		if !fn([]byte(k)) {
			return
		}
	}
}

// Len implements Store.
func (s *FileStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveKeys
}

// SizeOnDisk implements Store.
func (s *FileStore) SizeOnDisk() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.off
}

// Sync implements Store. The buffered writer is flushed under the store
// lock, but the fsync itself runs outside it: flushed bytes are already
// in the kernel, so concurrent appenders may keep writing while the disk
// syncs — which is what lets a group-commit caller (replica.Log's single
// flusher) overlap one batch's durability wait with the next batch's
// writes. Records appended after the flush are not covered by this call;
// callers track their own durable watermark.
func (s *FileStore) Sync() error {
	start := time.Now()
	s.mu.Lock()
	if err := s.w.Flush(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.dirty = false
	f := s.f
	s.mu.Unlock()
	err := f.Sync()
	if obs := s.syncObs.Load(); obs != nil {
		(*obs)(time.Since(start))
	}
	return err
}

// Reset truncates the log to empty and clears the index — the store's
// half of a replica truncate-and-resync: a diverged WAL's history is
// discarded wholesale before the good history streams back in. The file
// stays open and writable; the magic header is rewritten and synced so a
// crash mid-resync reopens as a valid empty log, never a torn one.
func (s *FileStore) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resetLocked()
}

// resetLocked is Reset with the write lock held (SeqLog resets its
// sequence counter under the same critical section).
func (s *FileStore) resetLocked() error {
	if s.f == nil {
		return fmt.Errorf("kvstore: reset on closed store")
	}
	s.w.Reset(io.Discard) // drop buffered records destined for the old log
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := s.f.WriteString(fileMagic); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.off = int64(len(fileMagic))
	s.index = make(map[string]recordLoc)
	s.liveKeys = 0
	s.dirty = false
	s.w.Reset(s.f)
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.w.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
