// Package kvstore provides the persistent key-value storage substrate
// the DeltaGraph index is stored in. The paper's prototype used Kyoto
// Cabinet and notes that "since we only require a simple get/put
// interface from the storage engine, we can easily plug in other ...
// key-value stores"; this package supplies that interface plus the
// implementations:
//
//   - MemStore:    in-memory map, for tests and ephemeral indexes.
//   - FileStore:   disk-based append-only log with CRC-checked records,
//     optional flate compression (Kyoto Cabinet's role), and an
//     in-memory key index rebuilt on open. A record half-written at a
//     crash fails its CRC on reopen and is dropped — the torn tail
//     never corrupts earlier data.
//   - Partitioned: horizontal composition of k stores, one per storage
//     "machine", routed by the partition prefix of the key — the same
//     hash space internal/shard splits the serving layer by.
//   - SeqLog:      contiguous sequenced records layered on FileStore's
//     format — the record substrate internal/replica's write-ahead log
//     is built on (append batches, contiguous-sequence recovery scans,
//     ForEachKey).
//
// Concurrency rules: every Store implementation is safe for concurrent
// use. FileStore serializes writes under its mutex but runs Sync's
// fsync *outside* the store lock, so writers overlap a sync in flight —
// the property replica.Log's group commit batches on. SeqLog appends
// are single-writer by contract (the replication Node's mutex provides
// that); its reads are concurrent-safe.
package kvstore
