package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testStoreBasics(t *testing.T, s Store) {
	t.Helper()
	if _, err := s.Get([]byte("missing")); err != ErrNotFound {
		t.Errorf("Get missing = %v, want ErrNotFound", err)
	}
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get([]byte("k1"))
	if err != nil || string(got) != "v1" {
		t.Errorf("Get k1 = %q, %v", got, err)
	}
	// Overwrite.
	if err := s.Put([]byte("k1"), []byte("v1b")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get([]byte("k1"))
	if string(got) != "v1b" {
		t.Errorf("after overwrite Get k1 = %q", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	// Delete.
	if err := s.Delete([]byte("k2")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k2")); err != ErrNotFound {
		t.Error("deleted key still readable")
	}
	if err := s.Delete([]byte("never-existed")); err != nil {
		t.Errorf("deleting absent key: %v", err)
	}
	if s.Len() != 1 {
		t.Errorf("Len after delete = %d, want 1", s.Len())
	}
	// Empty value round-trips.
	if err := s.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get([]byte("empty"))
	if err != nil || len(got) != 0 {
		t.Errorf("empty value: %q, %v", got, err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync: %v", err)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	testStoreBasics(t, s)
	if s.SizeOnDisk() <= 0 {
		t.Error("MemStore should report payload bytes")
	}
}

func TestMemStoreGetIsolation(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	val := []byte("hello")
	s.Put([]byte("k"), val)
	val[0] = 'X' // caller mutation must not leak in
	got, _ := s.Get([]byte("k"))
	if string(got) != "hello" {
		t.Error("Put did not copy value")
	}
	got[0] = 'Y' // returned mutation must not leak back
	got2, _ := s.Get([]byte("k"))
	if string(got2) != "hello" {
		t.Error("Get did not copy value")
	}
}

func openTestFileStore(t *testing.T, opts FileOptions) (*FileStore, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenFileStore(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestFileStore(t *testing.T) {
	s, _ := openTestFileStore(t, FileOptions{})
	defer s.Close()
	testStoreBasics(t, s)
	if s.SizeOnDisk() <= int64(len(fileMagic)) {
		t.Error("SizeOnDisk should grow with writes")
	}
}

func TestFileStoreReopen(t *testing.T) {
	s, path := openTestFileStore(t, FileOptions{Compress: true})
	want := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(200))
		v := bytes.Repeat([]byte{byte(i)}, rng.Intn(300))
		if rng.Intn(10) == 0 {
			s.Delete([]byte(k))
			delete(want, k)
		} else {
			s.Put([]byte(k), v)
			want[k] = string(v)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path, FileOptions{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Errorf("reopened Len = %d, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, err := s2.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("reopened Get(%q): %q, %v", k, got, err)
		}
	}
}

func TestFileStoreTornTailRecovery(t *testing.T) {
	s, path := openTestFileStore(t, FileOptions{})
	s.Put([]byte("a"), []byte("va"))
	s.Put([]byte("b"), []byte("vb"))
	s.Close()

	// Simulate a crash mid-append: write a partial garbage record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x05, 0x20, 0x00, 'x'})
	f.Close()

	s2, err := OpenFileStore(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Get([]byte("a")); err != nil || string(got) != "va" {
		t.Errorf("a after torn tail: %q %v", got, err)
	}
	if got, err := s2.Get([]byte("b")); err != nil || string(got) != "vb" {
		t.Errorf("b after torn tail: %q %v", got, err)
	}
	if s2.Len() != 2 {
		t.Errorf("Len = %d", s2.Len())
	}
	// The store must still accept writes after recovery.
	if err := s2.Put([]byte("c"), []byte("vc")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.Get([]byte("c")); string(got) != "vc" {
		t.Error("write after recovery failed")
	}
}

func TestFileStoreCorruptMiddleStopsScan(t *testing.T) {
	s, path := openTestFileStore(t, FileOptions{})
	s.Put([]byte("a"), []byte("va"))
	s.Close()
	// Flip a byte inside the only record.
	data, _ := os.ReadFile(path)
	data[len(fileMagic)+3] ^= 0xff
	os.WriteFile(path, data, 0o644)

	s2, err := OpenFileStore(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get([]byte("a")); err != ErrNotFound {
		t.Error("corrupt record should be dropped")
	}
}

func TestFileStoreRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign")
	os.WriteFile(path, []byte("this is not a log"), 0o644)
	if _, err := OpenFileStore(path, FileOptions{}); err == nil {
		t.Error("foreign file accepted")
	}
}

func TestFileStoreCompressionSavesSpace(t *testing.T) {
	big := bytes.Repeat([]byte("abcdefgh"), 4096)
	sc, _ := openTestFileStore(t, FileOptions{Compress: true})
	defer sc.Close()
	sc.Put([]byte("k"), big)
	sc.Sync()
	su, _ := openTestFileStore(t, FileOptions{})
	defer su.Close()
	su.Put([]byte("k"), big)
	su.Sync()
	if sc.SizeOnDisk() >= su.SizeOnDisk() {
		t.Errorf("compression did not help: %d >= %d", sc.SizeOnDisk(), su.SizeOnDisk())
	}
	got, err := sc.Get([]byte("k"))
	if err != nil || !bytes.Equal(got, big) {
		t.Error("compressed value did not round-trip")
	}
}

func TestKeyCodec(t *testing.T) {
	for _, tc := range []struct {
		part int
		id   uint64
		comp Component
	}{{0, 0, ComponentStruct}, {3, 12345, ComponentEdgeAttr}, {65535, 1 << 60, ComponentAuxBase + 2}} {
		key := EncodeKey(tc.part, tc.id, tc.comp)
		p, id, c, err := DecodeKey(key)
		if err != nil || p != tc.part || id != tc.id || c != tc.comp {
			t.Errorf("round trip (%d,%d,%d) -> (%d,%d,%d,%v)", tc.part, tc.id, tc.comp, p, id, c, err)
		}
	}
	if _, _, _, err := DecodeKey([]byte("short")); err == nil {
		t.Error("short key accepted")
	}
}

func TestComponentString(t *testing.T) {
	if ComponentStruct.String() != "struct" || ComponentTransient.String() != "transient" {
		t.Error("component names wrong")
	}
	if ComponentAuxBase.String() != "aux0" || (ComponentAuxBase+1).String() != "aux1" {
		t.Error("aux component names wrong")
	}
}

func TestPartitioned(t *testing.T) {
	p := NewMemPartitioned(4)
	defer p.Close()
	if p.NumPartitions() != 4 {
		t.Fatal("wrong partition count")
	}
	keys := make([][]byte, 40)
	for i := range keys {
		keys[i] = EncodeKey(i%4, uint64(i), ComponentStruct)
		if err := p.Put(keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Data landed in the right partitions.
	for i := 0; i < 4; i++ {
		if p.Part(i).Len() != 10 {
			t.Errorf("partition %d has %d keys, want 10", i, p.Part(i).Len())
		}
	}
	if p.Len() != 40 {
		t.Errorf("Len = %d", p.Len())
	}
	// Routed get.
	got, err := p.Get(keys[7])
	if err != nil || got[0] != 7 {
		t.Errorf("routed Get = %v, %v", got, err)
	}
	// Parallel multi-get, including a missing key.
	missing := EncodeKey(2, 9999, ComponentStruct)
	vals, err := p.GetMany(append([][]byte{missing}, keys...))
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != nil {
		t.Error("missing key should yield nil")
	}
	for i, v := range vals[1:] {
		if v == nil || v[0] != byte(i) {
			t.Errorf("GetMany[%d] = %v", i, v)
		}
	}
	// Out-of-range partition rejected.
	if _, err := p.Get(EncodeKey(9, 0, ComponentStruct)); err == nil {
		t.Error("out-of-range partition accepted")
	}
	if err := p.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(keys[0]); err != ErrNotFound {
		t.Error("delete did not route")
	}
}

// Property: MemStore and FileStore agree under a random operation sequence.
func TestFileStoreMatchesMemStore(t *testing.T) {
	s, _ := openTestFileStore(t, FileOptions{Compress: true})
	defer s.Close()
	m := NewMemStore()
	defer m.Close()
	check := func(op uint8, key uint8, val []byte) bool {
		k := []byte{key % 16}
		switch op % 3 {
		case 0:
			return s.Put(k, val) == nil && m.Put(k, val) == nil
		case 1:
			return s.Delete(k) == nil && m.Delete(k) == nil
		default:
			gv, gerr := s.Get(k)
			wv, werr := m.Get(k)
			return gerr == werr && bytes.Equal(gv, wv)
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
	if s.Len() != m.Len() {
		t.Errorf("Len mismatch: %d vs %d", s.Len(), m.Len())
	}
}
