package kvstore

import "sync"

// MemStore is an in-memory Store backed by a map. It is the default backend
// for tests and for ephemeral indexes that fit in memory.
type MemStore struct {
	mu    sync.RWMutex
	data  map[string][]byte
	bytes int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Get implements Store.
func (m *MemStore) Get(key []byte) ([]byte, error) {
	m.mu.RLock()
	v, ok := m.data[string(key)]
	m.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Put implements Store.
func (m *MemStore) Put(key, value []byte) error {
	v := make([]byte, len(value))
	copy(v, value)
	m.mu.Lock()
	if old, ok := m.data[string(key)]; ok {
		m.bytes -= int64(len(old))
	} else {
		m.bytes += int64(len(key))
	}
	m.bytes += int64(len(v))
	m.data[string(key)] = v
	m.mu.Unlock()
	return nil
}

// Delete implements Store.
func (m *MemStore) Delete(key []byte) error {
	m.mu.Lock()
	if old, ok := m.data[string(key)]; ok {
		m.bytes -= int64(len(old)) + int64(len(key))
		delete(m.data, string(key))
	}
	m.mu.Unlock()
	return nil
}

// Len implements Store.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// SizeOnDisk implements Store. For MemStore it reports the total payload
// bytes held in memory, so space comparisons still work for in-memory runs.
func (m *MemStore) SizeOnDisk() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// Sync implements Store (no-op).
func (m *MemStore) Sync() error { return nil }

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	m.data = nil
	m.mu.Unlock()
	return nil
}
