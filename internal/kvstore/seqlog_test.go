package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestSeqLogAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenSeqLog(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Last() != 0 {
		t.Fatalf("fresh log Last() = %d, want 0", l.Last())
	}
	for i := 1; i <= 100; i++ {
		seq, err := l.Append(fmt.Appendf(nil, "payload-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = OpenSeqLog(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Last() != 100 {
		t.Fatalf("reopened Last() = %d, want 100", l.Last())
	}
	for i := 1; i <= 100; i++ {
		v, err := l.Get(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("payload-%d", i); string(v) != want {
			t.Fatalf("seq %d = %q, want %q", i, v, want)
		}
	}
	if _, err := l.Get(101); err != ErrNotFound {
		t.Fatalf("Get past end: %v, want ErrNotFound", err)
	}
}

func TestSeqLogAppendAtRejectsGaps(t *testing.T) {
	l, err := OpenSeqLog(filepath.Join(t.TempDir(), "wal.log"), FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendAt(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendAt(3, []byte("c")); err == nil {
		t.Fatal("AppendAt(3) after seq 1 should reject the gap")
	}
	if _, err := l.AppendAt(1, []byte("a")); err == nil {
		t.Fatal("AppendAt(1) twice should reject the duplicate")
	}
	if _, err := l.AppendAt(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
}

func TestSeqLogTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := OpenSeqLog(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte("0123456789abcdef0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record mid-payload, as a crash between write and sync
	// would.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-10); err != nil {
		t.Fatal(err)
	}

	l, err = OpenSeqLog(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Last() != 9 {
		t.Fatalf("after torn tail Last() = %d, want 9", l.Last())
	}
	// The log must accept fresh appends over the torn region.
	if seq, err := l.Append([]byte("replacement")); err != nil || seq != 10 {
		t.Fatalf("append after tear: seq %d err %v", seq, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}
