package kvstore

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Partitioned composes k stores into one, routing every key by the
// partition prefix EncodeKey writes. It models the paper's distributed
// deployment (Section 4.6): one storage unit per machine, all deltas and
// eventlists split into k partition-local pieces, fetched in parallel.
type Partitioned struct {
	parts []Store
}

// NewPartitioned wraps the given per-partition stores. The slice order
// defines partition IDs.
func NewPartitioned(parts []Store) *Partitioned {
	return &Partitioned{parts: parts}
}

// NewMemPartitioned creates a Partitioned store over p fresh MemStores.
func NewMemPartitioned(p int) *Partitioned {
	parts := make([]Store, p)
	for i := range parts {
		parts[i] = NewMemStore()
	}
	return NewPartitioned(parts)
}

// NumPartitions returns the number of underlying stores.
func (p *Partitioned) NumPartitions() int { return len(p.parts) }

// Part returns the store for partition i.
func (p *Partitioned) Part(i int) Store { return p.parts[i] }

func (p *Partitioned) route(key []byte) (Store, error) {
	if len(key) < 2 {
		return nil, fmt.Errorf("kvstore: partitioned key too short")
	}
	id := int(binary.BigEndian.Uint16(key[:2]))
	if id >= len(p.parts) {
		return nil, fmt.Errorf("kvstore: partition %d out of range (have %d)", id, len(p.parts))
	}
	return p.parts[id], nil
}

// Get implements Store.
func (p *Partitioned) Get(key []byte) ([]byte, error) {
	st, err := p.route(key)
	if err != nil {
		return nil, err
	}
	return st.Get(key)
}

// Put implements Store.
func (p *Partitioned) Put(key, value []byte) error {
	st, err := p.route(key)
	if err != nil {
		return err
	}
	return st.Put(key, value)
}

// Delete implements Store.
func (p *Partitioned) Delete(key []byte) error {
	st, err := p.route(key)
	if err != nil {
		return err
	}
	return st.Delete(key)
}

// GetMany fetches all keys concurrently, one goroutine per partition, and
// returns the values in key order. Missing keys yield nil entries rather
// than an error, so callers can distinguish optional components.
func (p *Partitioned) GetMany(keys [][]byte) ([][]byte, error) {
	results := make([][]byte, len(keys))
	byPart := make(map[int][]int)
	for i, k := range keys {
		if len(k) < 2 {
			return nil, fmt.Errorf("kvstore: partitioned key too short")
		}
		id := int(binary.BigEndian.Uint16(k[:2]))
		byPart[id] = append(byPart[id], i)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(byPart))
	for id, idxs := range byPart {
		if id >= len(p.parts) {
			return nil, fmt.Errorf("kvstore: partition %d out of range", id)
		}
		wg.Add(1)
		go func(st Store, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				v, err := st.Get(keys[i])
				if err != nil {
					if err == ErrNotFound {
						continue
					}
					errs <- err
					return
				}
				results[i] = v
			}
		}(p.parts[id], idxs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	return results, nil
}

// Len implements Store (sum over partitions).
func (p *Partitioned) Len() int {
	n := 0
	for _, st := range p.parts {
		n += st.Len()
	}
	return n
}

// SizeOnDisk implements Store (sum over partitions).
func (p *Partitioned) SizeOnDisk() int64 {
	var n int64
	for _, st := range p.parts {
		n += st.SizeOnDisk()
	}
	return n
}

// Sync implements Store.
func (p *Partitioned) Sync() error {
	for _, st := range p.parts {
		if err := st.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Store; it closes every partition and returns the first
// error.
func (p *Partitioned) Close() error {
	var first error
	for _, st := range p.parts {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
