// The Store interface and key helpers (package overview in doc.go).
package kvstore

import (
	"encoding/binary"
	"errors"
)

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("kvstore: key not found")

// Store is the get/put interface DeltaGraph requires of its backend.
// Implementations must be safe for concurrent use.
type Store interface {
	// Get returns the value stored under key, or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// Put stores value under key, replacing any existing value.
	Put(key, value []byte) error
	// Delete removes key. Deleting an absent key is a no-op.
	Delete(key []byte) error
	// Len returns the number of live keys.
	Len() int
	// SizeOnDisk returns the backing storage footprint in bytes
	// (0 for purely in-memory stores). The experiment harness uses it to
	// equalize disk budgets across approaches.
	SizeOnDisk() int64
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// Component identifies one column of a delta in the columnar layout of
// Section 4.2.
type Component uint8

// Delta components. Aux components for user-defined auxiliary indexes start
// at ComponentAuxBase and are allocated sequentially per registered index.
const (
	ComponentStruct Component = iota
	ComponentNodeAttr
	ComponentEdgeAttr
	ComponentTransient
	ComponentAuxBase
)

var componentNames = [...]string{"struct", "nodeattr", "edgeattr", "transient"}

// String names the component; aux components render as aux0, aux1, ...
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return "aux" + string(rune('0'+int(c-ComponentAuxBase)))
}

// EncodeKey builds the storage key <partition_id, delta_id, component>
// (Section 4.2). Keys sort by partition, then delta, then component.
func EncodeKey(partition int, deltaID uint64, component Component) []byte {
	key := make([]byte, 2+8+1)
	binary.BigEndian.PutUint16(key[0:2], uint16(partition))
	binary.BigEndian.PutUint64(key[2:10], deltaID)
	key[10] = byte(component)
	return key
}

// DecodeKey splits a key built by EncodeKey.
func DecodeKey(key []byte) (partition int, deltaID uint64, component Component, err error) {
	if len(key) != 11 {
		return 0, 0, 0, errors.New("kvstore: malformed key")
	}
	return int(binary.BigEndian.Uint16(key[0:2])), binary.BigEndian.Uint64(key[2:10]), Component(key[10]), nil
}
