package replica

// Automated truncate-and-resync. A follower's WAL can diverge from its
// primary's: the classic case is a deposed primary rejoining after a
// failover while holding an unacked tail the promoted follower never
// fetched. Divergence used to be an operator problem (wipe the WAL dir,
// restart the node); now the tail loop detects it with a lineage
// handshake before mirroring anything, and — when the node was built
// with a manager factory (Config.NewManager) — resolves it by resetting
// the log, swapping in a fresh empty GraphManager, and re-tailing from
// sequence 1. POST /admin/reseed forces the same path by hand.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"historygraph/internal/server"
)

// checkLineage reports whether the local WAL diverged from the primary's
// log: the primary's durable head is shorter than ours, or the record at
// our head differs from the primary's record at the same sequence. An
// empty local log is trivially a prefix.
func (n *Node) checkLineage(ctx context.Context, primary string) (bool, error) {
	last := n.log.LastSeq()
	if last == 0 {
		return false, nil
	}
	resp, err := n.fetchReplicate(ctx, fmt.Sprintf("%s/replicate?from=%d&max=1", primary, last))
	if err != nil {
		return false, fmt.Errorf("replica: lineage check: %w", err)
	}
	n.noteHead(resp.LastSeq)
	if resp.LastSeq < last {
		return true, nil // local log outgrew the primary: an unacked tail
	}
	if len(resp.Records) == 0 || resp.Records[0].Seq != last {
		return false, fmt.Errorf("replica: lineage check: primary head %d but no record at %d", resp.LastSeq, last)
	}
	local, err := n.log.Read(last, 1)
	if err != nil {
		return false, err
	}
	if len(local) == 0 {
		return false, fmt.Errorf("replica: lineage check: local record %d unreadable", last)
	}
	return !recordsEqual(local[0], resp.Records[0]), nil
}

// recordsEqual compares two WAL records through their canonical JSON form
// (the event carries attribute-value pointers, so direct struct equality
// is meaningless).
func recordsEqual(a, b Record) bool {
	aj, errA := json.Marshal(a)
	bj, errB := json.Marshal(b)
	return errA == nil && errB == nil && bytes.Equal(aj, bj)
}

// reseed discards the diverged local state — WAL and in-memory graph —
// and leaves the node empty, ready to re-mirror the primary from
// sequence 1. The caller is the tail loop (or the /admin/reseed handler
// with the tail stopped), so no mirrored records race the reset; live
// admissions cannot either, because only followers re-seed.
func (n *Node) reseed(primary string) error {
	if n.newManager == nil {
		return fmt.Errorf("replica: WAL diverged from primary %s and no manager factory is configured; wipe the WAL directory and restart the node", primary)
	}
	n.reseedMu.Lock()
	defer n.reseedMu.Unlock()
	// Quiesce the pipeline around the swap: both stage locks held means
	// nothing is admitting against or applying into the graph being
	// replaced.
	n.admitMu.Lock()
	defer n.admitMu.Unlock()
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	gm, err := n.newManager()
	if err != nil {
		return fmt.Errorf("replica: re-seed: building fresh manager: %w", err)
	}
	if err := n.log.Reset(); err != nil {
		gm.Close()
		return fmt.Errorf("replica: re-seed: resetting WAL: %w", err)
	}
	old := n.srv.ReplaceManager(gm)
	n.appliedSeq.Store(0)
	n.admittedSeq.Store(0)
	n.admittedAt.Store(0)
	n.walSkipped.Store(0)
	n.dedupMu.Lock()
	n.batches = make(map[string]batchSpan)
	n.batchOrder = nil
	n.dedupMu.Unlock()
	n.reseedN.Add(1)
	n.reseeds.Inc()
	if old != nil {
		// In-flight reads captured the old manager and release through
		// it; let them drain before the backing store handle goes away.
		go func() {
			time.Sleep(2 * time.Second)
			old.Close()
		}()
	}
	return nil
}

// handleReseed answers POST /admin/reseed: an operator-forced
// truncate-and-resync. Follower role only — a primary's log is the
// authoritative one and must never be discarded by automation.
func (n *Node) handleReseed(w http.ResponseWriter, r *http.Request) {
	if n.Role() != RoleFollower {
		server.WriteError(w, http.StatusBadRequest,
			fmt.Errorf("replica: re-seed applies to followers only; point the node at a primary first"))
		return
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		server.WriteError(w, http.StatusServiceUnavailable, errNodeClosed)
		return
	}
	n.stopTailLocked()
	primary := n.primaryURL
	err := n.reseed(primary)
	if err == nil {
		n.tailErr.Store("")
		n.headKnown.Store(false)
		n.primaryHead.Store(0)
	}
	n.startTailLocked()
	n.mu.Unlock()
	if err != nil {
		server.WriteError(w, http.StatusInternalServerError, err)
		return
	}
	n.handleStatus(w, r)
}
