package replica

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/server"
)

// Role is a replica-set member's current role.
type Role int32

// Replica roles.
const (
	// RolePrimary accepts external appends, logs them durably, and serves
	// its WAL to followers.
	RolePrimary Role = iota
	// RoleFollower rejects external appends and tails a primary's WAL.
	RoleFollower
)

// String names the role for wire and log output.
func (r Role) String() string {
	if r == RoleFollower {
		return "follower"
	}
	return "primary"
}

// Defaults for Config zero values.
const (
	DefaultPollWait   = 2 * time.Second
	DefaultAckTimeout = 5 * time.Second
	DefaultFetchMax   = 512
	// DefaultRetryDelay paces a follower's reconnect attempts after its
	// primary stops answering.
	DefaultRetryDelay = 200 * time.Millisecond
)

// Config tunes a Node.
type Config struct {
	// Role selects the starting role; POST /role can change it live.
	Role Role
	// PrimaryURL is the primary's base URL (follower role only).
	PrimaryURL string
	// SelfID identifies this node in its primary's follower-ack table and
	// in /replstatus; defaults to a random hex ID. Operators usually pass
	// the node's own base URL so ack tables read naturally.
	SelfID string
	// SyncFollowers is how many followers must have durably logged a
	// batch before the primary acks the append. 0 acks after the local
	// WAL sync only — durable on this node, but an acked batch can be
	// lost if the primary dies before any follower fetches it. Deploy
	// replica sets with >= 1 for the no-acked-loss guarantee.
	SyncFollowers int
	// AckTimeout bounds the SyncFollowers wait; on expiry the append
	// fails with 503 (the events stay in the WAL and keep replicating,
	// but were never acked). 0 picks DefaultAckTimeout.
	AckTimeout time.Duration
	// PollWait is the long-poll window a tailing follower asks its
	// primary to hold an empty /replicate for. 0 picks DefaultPollWait.
	PollWait time.Duration
	// FetchMax caps records per /replicate response. 0 picks
	// DefaultFetchMax.
	FetchMax int
	// HTTPClient overrides the follower's transport (tests inject clients
	// wired to in-process servers).
	HTTPClient *http.Client
}

// Node is one member of a replica set: an internal/server.Server with a
// durable WAL under its append path and primary/follower replication on
// top. Construction replays the local WAL into the embedded GraphManager,
// so a restarted node resumes exactly where its log ends.
type Node struct {
	srv *server.Server
	log *Log
	hc  *http.Client
	mux *http.ServeMux

	selfID        string
	syncFollowers int
	ackTimeout    time.Duration
	pollWait      time.Duration
	fetchMax      int

	role       atomic.Int32
	appliedSeq atomic.Uint64
	tailErr    atomic.Value // string: last tail-loop failure, "" when healthy

	// appendMu serializes the WAL-write + graph-apply pair so the graph
	// is always applied in WAL sequence order. Without it, two concurrent
	// appends could durably log as A then B but apply as B then A — the
	// later-timestamped B would raise the index's clock and A's apply
	// would be rejected as out of order, leaving the primary's in-memory
	// graph diverged from its own WAL (and from every follower, which
	// applies in strict sequence order).
	appendMu sync.Mutex

	mu         sync.Mutex
	primaryURL string
	acks       map[string]uint64
	ackNotify  chan struct{}
	tailCancel context.CancelFunc
	tailDone   chan struct{}
	closed     bool
}

// NewNode wraps srv with the replication layer over log. It replays the
// WAL into srv's GraphManager (events at or before the manager's LastTime
// are skipped, so a checkpointed index is topped up rather than
// double-applied) and, in the follower role, starts tailing the primary.
func NewNode(srv *server.Server, log *Log, cfg Config) (*Node, error) {
	n := &Node{
		srv:           srv,
		log:           log,
		selfID:        cfg.SelfID,
		syncFollowers: cfg.SyncFollowers,
		ackTimeout:    cfg.AckTimeout,
		pollWait:      cfg.PollWait,
		fetchMax:      cfg.FetchMax,
		acks:          make(map[string]uint64),
		ackNotify:     make(chan struct{}),
	}
	if n.selfID == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, err
		}
		n.selfID = hex.EncodeToString(b[:])
	}
	if n.ackTimeout <= 0 {
		n.ackTimeout = DefaultAckTimeout
	}
	if n.pollWait <= 0 {
		n.pollWait = DefaultPollWait
	}
	if n.fetchMax <= 0 {
		n.fetchMax = DefaultFetchMax
	}
	n.hc = cfg.HTTPClient
	if n.hc == nil {
		n.hc = &http.Client{}
	}
	n.tailErr.Store("")
	if err := n.replay(); err != nil {
		return nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /append", n.handleAppend)
	mux.HandleFunc("GET /replicate", n.handleReplicate)
	mux.HandleFunc("GET /replstatus", n.handleStatus)
	mux.HandleFunc("POST /role", n.handleRole)
	mux.Handle("/", srv.Handler())
	n.mux = mux

	if cfg.Role == RoleFollower {
		if cfg.PrimaryURL == "" {
			return nil, fmt.Errorf("replica: follower role requires PrimaryURL")
		}
		n.role.Store(int32(RoleFollower))
		n.mu.Lock()
		n.primaryURL = cfg.PrimaryURL
		n.startTailLocked()
		n.mu.Unlock()
	}
	return n, nil
}

// replay rebuilds the in-memory graph from the local WAL. Events at or
// before the manager's current LastTime are skipped: a fresh manager
// replays everything, a checkpoint-loaded one only the suffix the
// checkpoint predates.
func (n *Node) replay() error {
	floor := n.srv.Manager().LastTime()
	err := n.log.Replay(func(events historygraph.EventList) error {
		if floor > 0 {
			kept := events[:0:len(events)]
			for _, ev := range events {
				if ev.At > floor {
					kept = append(kept, ev)
				}
			}
			events = kept
		}
		if len(events) == 0 {
			return nil
		}
		if _, err := n.srv.ApplyEvents(events); err != nil {
			return fmt.Errorf("replica: WAL replay: %w", err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	n.appliedSeq.Store(n.log.LastSeq())
	return nil
}

// Role returns the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// AppliedSeq returns the last WAL sequence applied to the in-memory graph.
func (n *Node) AppliedSeq() uint64 { return n.appliedSeq.Load() }

// SelfID returns the node's follower-ack identity.
func (n *Node) SelfID() string { return n.selfID }

// Handler returns the node's HTTP handler: the wrapped server's endpoints
// plus /replicate, /replstatus and /role, with /append intercepted.
func (n *Node) Handler() http.Handler { return n.mux }

// Close stops the tail loop (the wrapped server and WAL are the caller's
// to close, in that order).
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	n.stopTailLocked()
	n.mu.Unlock()
}

// --- append path (primary) -------------------------------------------

func (n *Node) handleAppend(w http.ResponseWriter, r *http.Request) {
	if n.Role() != RolePrimary {
		n.mu.Lock()
		primary := n.primaryURL
		n.mu.Unlock()
		server.WriteJSON(w, http.StatusMisdirectedRequest, map[string]string{
			"error":   "replica: this node is a follower; appends go to the primary",
			"primary": primary,
		})
		return
	}
	var body []server.EventJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad append body: %w", err))
		return
	}
	events, err := server.DecodeEvents(body)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// Durability order: WAL first (synced), then the in-memory graph, then
	// — when configured — the follower-ack wait. Every acked event is on
	// disk here and on SyncFollowers followers. appendMu keeps the two
	// steps atomic with respect to concurrent appends, so apply order
	// always matches WAL order.
	n.appendMu.Lock()
	_, last, err := n.log.Append(events)
	if err != nil {
		n.appendMu.Unlock()
		server.WriteError(w, http.StatusInternalServerError, fmt.Errorf("replica: WAL append: %w", err))
		return
	}
	res, appendErr := n.srv.ApplyEvents(events)
	if appendErr == nil && last > 0 {
		// On a partial apply failure appliedSeq stays put: overstating it
		// would mislead the coordinator's most-caught-up promotion and
		// in-sync read routing.
		n.appliedSeq.Store(last)
	}
	n.appendMu.Unlock()
	if appendErr != nil {
		server.WriteError(w, http.StatusUnprocessableEntity, appendErr)
		return
	}
	if len(events) > 0 && n.syncFollowers > 0 {
		if !n.waitForAcks(last, n.syncFollowers) {
			server.WriteError(w, http.StatusServiceUnavailable, fmt.Errorf(
				"replica: %d follower(s) did not confirm seq %d within %v (events are logged and will replicate; batch was NOT acked)",
				n.syncFollowers, last, n.ackTimeout))
			return
		}
	}
	res.Seq = last
	server.WriteJSON(w, http.StatusOK, res)
}

// recordAck notes that follower id has durably logged every record up to
// seq.
func (n *Node) recordAck(id string, seq uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.acks[id] >= seq {
		return
	}
	n.acks[id] = seq
	close(n.ackNotify)
	n.ackNotify = make(chan struct{})
}

// waitForAcks blocks until count followers have acked seq or AckTimeout
// elapses.
func (n *Node) waitForAcks(seq uint64, count int) bool {
	deadline := time.NewTimer(n.ackTimeout)
	defer deadline.Stop()
	for {
		n.mu.Lock()
		got := 0
		for _, a := range n.acks {
			if a >= seq {
				got++
			}
		}
		ch := n.ackNotify
		n.mu.Unlock()
		if got >= count {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return false
		}
	}
}

// --- replication stream (primary side) --------------------------------

// replicateResponse is the GET /replicate body.
type replicateResponse struct {
	Records []Record `json:"records"`
	LastSeq uint64   `json:"last_seq"`
}

func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("replicate wants from=<seq> >= 1"))
		return
	}
	max := n.fetchMax
	if mq := q.Get("max"); mq != "" {
		if m, err := strconv.Atoi(mq); err == nil && m > 0 && m < max {
			max = m
		}
	}
	// from=N acknowledges that the caller has durably logged 1..N-1.
	if id := q.Get("id"); id != "" && from > 1 {
		n.recordAck(id, from-1)
	}
	if wq := q.Get("wait"); wq != "" {
		if wait, err := time.ParseDuration(wq); err == nil && wait > 0 {
			if wait > n.pollWait {
				wait = n.pollWait
			}
			n.log.Wait(from-1, wait) // long-poll until the log grows past from-1
		}
	}
	recs, err := n.log.Read(from, max)
	if err != nil {
		server.WriteError(w, http.StatusInternalServerError, err)
		return
	}
	server.WriteJSON(w, http.StatusOK, replicateResponse{Records: recs, LastSeq: n.log.LastSeq()})
}

// --- status and role control ------------------------------------------

// StatusJSON answers GET /replstatus; the shard coordinator's health
// checks and failover decisions read it.
type StatusJSON struct {
	ID         string `json:"id"`
	Role       string `json:"role"`
	Primary    string `json:"primary,omitempty"`
	LastSeq    uint64 `json:"last_seq"`
	AppliedSeq uint64 `json:"applied_seq"`
	TailError  string `json:"tail_error,omitempty"`
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	primary := n.primaryURL
	n.mu.Unlock()
	server.WriteJSON(w, http.StatusOK, StatusJSON{
		ID:         n.selfID,
		Role:       n.Role().String(),
		Primary:    primary,
		LastSeq:    n.log.LastSeq(),
		AppliedSeq: n.appliedSeq.Load(),
		TailError:  n.tailErr.Load().(string),
	})
}

// RoleRequest is the POST /role body: {"role":"primary"} promotes,
// {"role":"follower","primary":"http://..."} (re)points a follower.
type RoleRequest struct {
	Role    string `json:"role"`
	Primary string `json:"primary,omitempty"`
}

func (n *Node) handleRole(w http.ResponseWriter, r *http.Request) {
	var req RoleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad role body: %w", err))
		return
	}
	switch req.Role {
	case "primary":
		n.Promote()
	case "follower":
		if req.Primary == "" {
			server.WriteError(w, http.StatusBadRequest, fmt.Errorf("follower role wants a primary URL"))
			return
		}
		n.Follow(req.Primary)
	default:
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("unknown role %q (want primary or follower)", req.Role))
		return
	}
	n.handleStatus(w, r)
}

// Promote switches the node to the primary role: the tail loop stops and
// external appends are accepted from now on. Idempotent.
func (n *Node) Promote() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopTailLocked()
	n.primaryURL = ""
	n.role.Store(int32(RolePrimary))
	n.tailErr.Store("")
}

// Follow switches the node to the follower role tailing primaryURL,
// restarting the tail loop if it was already following elsewhere.
func (n *Node) Follow(primaryURL string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopTailLocked()
	n.primaryURL = primaryURL
	n.role.Store(int32(RoleFollower))
	if !n.closed {
		n.startTailLocked()
	}
}

// --- follower tail loop -----------------------------------------------

func (n *Node) startTailLocked() {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	n.tailCancel = cancel
	n.tailDone = done
	primary := n.primaryURL
	go n.tailLoop(ctx, primary, done)
}

func (n *Node) stopTailLocked() {
	if n.tailCancel != nil {
		n.tailCancel()
		<-n.tailDone
		n.tailCancel = nil
		n.tailDone = nil
	}
}

// tailLoop fetches records from the primary and applies them in order:
// local WAL first (synced), then the in-memory graph — the same
// durability order the primary itself uses, so a follower crash replays
// its own log and re-fetches only what it never stored.
func (n *Node) tailLoop(ctx context.Context, primary string, done chan struct{}) {
	defer close(done)
	for ctx.Err() == nil {
		recs, err := n.fetch(ctx, primary)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			n.tailErr.Store(err.Error())
			select {
			case <-time.After(DefaultRetryDelay):
			case <-ctx.Done():
				return
			}
			continue
		}
		n.tailErr.Store("")
		if len(recs) == 0 {
			continue // long-poll expired with nothing new
		}
		if err := n.apply(recs); err != nil {
			// A sequence gap or apply failure means the logs diverged
			// (e.g. this node outlived a deposed primary's unacked tail).
			// Surface it in /replstatus and keep retrying — the operator
			// must re-seed the WAL dir.
			n.tailErr.Store(err.Error())
			select {
			case <-time.After(DefaultRetryDelay):
			case <-ctx.Done():
				return
			}
		}
	}
}

// fetch long-polls the primary for records past the local log end.
func (n *Node) fetch(ctx context.Context, primary string) ([]Record, error) {
	from := n.log.LastSeq() + 1
	url := fmt.Sprintf("%s/replicate?from=%d&max=%d&wait=%s&id=%s",
		primary, from, n.fetchMax, n.pollWait, n.selfID)
	reqCtx, cancel := context.WithTimeout(ctx, n.pollWait+10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: primary answered HTTP %d", resp.StatusCode)
	}
	var body replicateResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Records, nil
}

// apply mirrors fetched records into the local WAL, then the graph.
func (n *Node) apply(recs []Record) error {
	n.appendMu.Lock()
	defer n.appendMu.Unlock()
	if err := n.log.AppendRecords(recs); err != nil {
		return err
	}
	events := make(historygraph.EventList, 0, len(recs))
	lastSeq := n.appliedSeq.Load()
	for _, rec := range recs {
		if rec.Seq <= lastSeq {
			continue
		}
		ev, err := server.EventFromJSON(rec.Event)
		if err != nil {
			return err
		}
		events = append(events, ev)
		lastSeq = rec.Seq
	}
	if len(events) == 0 {
		return nil
	}
	if _, err := n.srv.ApplyEvents(events); err != nil {
		return err
	}
	n.appliedSeq.Store(lastSeq)
	return nil
}
