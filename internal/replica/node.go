package replica

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/graph"
	"historygraph/internal/metrics"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// Role is a replica-set member's current role.
type Role int32

// Replica roles.
const (
	// RolePrimary accepts external appends, logs them durably, and serves
	// its WAL to followers.
	RolePrimary Role = iota
	// RoleFollower rejects external appends and tails a primary's WAL.
	RoleFollower
)

// String names the role for wire and log output.
func (r Role) String() string {
	if r == RoleFollower {
		return "follower"
	}
	return "primary"
}

// Defaults for Config zero values.
const (
	DefaultPollWait   = 2 * time.Second
	DefaultAckTimeout = 5 * time.Second
	DefaultFetchMax   = 512
	// DefaultRetryDelay paces a follower's reconnect attempts after its
	// primary stops answering.
	DefaultRetryDelay = 200 * time.Millisecond
	// DefaultAppendQueue is the append pipeline's admitted-but-unapplied
	// capacity: how many batches may sit between the WAL write and the
	// applier before admission blocks (backpressure).
	DefaultAppendQueue = 256
	// DefaultStreamWindow is how many in-flight frames a streaming ingest
	// connection may have admitted before the server stops reading more
	// (per-stream backpressure on top of the shared pipeline queue).
	DefaultStreamWindow = 32
)

// Config tunes a Node.
type Config struct {
	// Role selects the starting role; POST /role can change it live.
	Role Role
	// PrimaryURL is the primary's base URL (follower role only).
	PrimaryURL string
	// SelfID identifies this node in its primary's follower-ack table and
	// in /replstatus; defaults to a random hex ID. Operators usually pass
	// the node's own base URL so ack tables read naturally.
	SelfID string
	// SyncFollowers is how many followers must have durably logged a
	// batch before the primary acks the append. 0 acks after the local
	// WAL sync only — durable on this node, but an acked batch can be
	// lost if the primary dies before any follower fetches it. Deploy
	// replica sets with >= 1 for the no-acked-loss guarantee.
	SyncFollowers int
	// AckTimeout bounds the SyncFollowers wait; on expiry the append
	// fails with 503 (the events stay in the WAL and keep replicating,
	// but were never acked). 0 picks DefaultAckTimeout.
	AckTimeout time.Duration
	// PollWait is the long-poll window a tailing follower asks its
	// primary to hold an empty /replicate for. 0 picks DefaultPollWait.
	PollWait time.Duration
	// FetchMax caps records per /replicate response. 0 picks
	// DefaultFetchMax.
	FetchMax int
	// HTTPClient overrides the follower's transport (tests inject clients
	// wired to in-process servers).
	HTTPClient *http.Client
	// ReadyMaxLag is how many WAL records a follower may trail its
	// primary's last known head and still answer GET /readyz with 200.
	// 0 requires the follower to be fully caught up.
	ReadyMaxLag uint64
	// AppendQueue caps the append pipeline's admitted-but-unapplied batch
	// count; admission blocks when it is full. 0 picks DefaultAppendQueue.
	AppendQueue int
	// StreamWindow caps a streaming ingest connection's in-flight frames;
	// the handler stops reading new frames until the oldest settles. 0
	// picks DefaultStreamWindow.
	StreamWindow int
	// NewManager builds a fresh, empty GraphManager over the same options
	// the node was opened with. It enables the automated truncate-and-resync
	// path: a follower whose WAL diverged from its primary (a deposed
	// primary's unacked tail, a mirror of one) resets its log, swaps in an
	// empty manager, and re-tails from sequence 1 instead of waiting for an
	// operator to wipe the WAL directory. Nil disables the automation; the
	// divergence is surfaced in /replstatus instead.
	NewManager func() (*historygraph.GraphManager, error)
}

// Node is one member of a replica set: an internal/server.Server with a
// durable WAL under its append path and primary/follower replication on
// top. Construction replays the local WAL into the embedded GraphManager,
// so a restarted node resumes exactly where its log ends.
type Node struct {
	srv *server.Server
	log *Log
	hc  *http.Client
	mux *http.ServeMux

	selfID        string
	syncFollowers int
	ackTimeout    time.Duration
	pollWait      time.Duration
	fetchMax      int
	readyMaxLag   uint64
	streamWindow  int
	newManager    func() (*historygraph.GraphManager, error)

	role       atomic.Int32
	appliedSeq atomic.Uint64
	walSkipped atomic.Uint64 // records in the WAL the graph rejected (skipped, not fatal)
	tailErr    atomic.Value  // string: last tail-loop failure, "" when healthy

	// primaryHead is the primary's durable log end as of the last
	// successful fetch; headKnown separates "caught up to 0" from "never
	// reached the primary" so /readyz cannot answer ready before first
	// contact.
	primaryHead atomic.Uint64
	headKnown   atomic.Bool
	tailFails   *metrics.Counter // fetch/apply failures in the tail loop

	// reseedN counts completed automated truncate-and-resync runs (also a
	// registry counter); /replstatus reports it so operators can tell a
	// clean catch-up from one that started by discarding a diverged log.
	reseedN  atomic.Uint64
	reseeds  *metrics.Counter
	reseedMu sync.Mutex // serializes reseed runs against each other

	// The slot-migration ingest (resharding): at most one per node.
	migMu sync.Mutex
	mig   *migration

	// The append pipeline. Appends used to hold one lock across
	// validate → WAL write (fsync included) → graph apply → follower-ack
	// wait, so a node admitted one batch at a time and every batch paid
	// its own group commit. The path is now staged:
	//
	//   1. admission (admitMu, short): dedup lookup, order validation
	//      against admittedAt, WAL record write (StartAppend — no sync
	//      wait), dedup span registration, enqueue.
	//   2. durability: the applier waits for the group commit covering
	//      the batch; many admitted batches share one fsync.
	//   3. apply: the single applier goroutine applies batches in WAL
	//      sequence order — admission order == seq order == apply order,
	//      the invariant that keeps replay, followers, and dedup correct.
	//   4. ack: the handler waits for its req's done signal, then (when
	//      SyncFollowers > 0) for the seq-watermark follower acks, which
	//      overlap freely across batches.
	//
	// admitMu serializes admissions so sequence numbers are assigned in
	// validation order; queue order matches because enqueue happens
	// before admitMu is released.
	admitMu sync.Mutex
	// admittedSeq/admittedAt track the WAL's admitted end: the highest
	// sequence number and event time ever written into the local log
	// (admitted live, mirrored from a primary, or recovered by replay).
	// Admission validates against admittedAt — not the graph clock, which
	// trails by whatever is still queued — so a batch is rejected exactly
	// when its events would be rejected at apply time.
	admittedSeq atomic.Uint64
	admittedAt  atomic.Int64
	queue       chan *applyReq
	inflight    atomic.Int64 // admitted (logged) but not yet applied
	quit        chan struct{}
	applierDone chan struct{}
	stageDur    *metrics.HistogramVec // per-stage append latency

	// applyMu serializes graph application (the applier goroutine, the
	// follower tail loop, and construction-time replay) so the graph is
	// always driven forward in WAL sequence order.
	applyMu sync.Mutex

	// dedupMu guards the append-dedup table: batch ID -> extent of the
	// WAL records carrying it. It is rebuilt from the WAL on replay,
	// extended at admission time (so a retry racing the pipeline dedups
	// instead of double-logging), and extended by follower mirroring —
	// both a restarted node and a promoted follower recognize a batch a
	// coordinator retries after a failover or a lost response, and ack it
	// instead of logging and applying the events twice. batchOrder evicts
	// oldest-first once maxBatchIDs is reached.
	dedupMu    sync.Mutex
	batches    map[string]batchSpan
	batchOrder []string

	mu         sync.Mutex
	primaryURL string
	acks       map[string]uint64
	ackNotify  chan struct{}
	tailCancel context.CancelFunc
	tailDone   chan struct{}
	closed     bool
}

// applyReq is one admitted batch riding the pipeline queue: its decoded
// events, the WAL sequence span they were written under, and the done
// channel the admitting handler waits on. A redrive req (events nil,
// redrive true) asks the applier to drive the graph forward from the WAL
// through last — the queued form of the old backlog drain.
type applyReq struct {
	events  historygraph.EventList
	first   uint64
	last    uint64
	start   time.Time // when admission wrote the WAL records (zero on redrives)
	redrive bool
	done    chan applyDone // buffered 1; the applier always answers
}

// applyDone is the applier's answer to one request.
type applyDone struct {
	res server.AppendResult
	err error
}

// batchSpan is one dedup-table entry: how many WAL records carry the batch
// ID and the highest sequence number among them.
type batchSpan struct {
	events  int
	lastSeq uint64
}

// maxBatchIDs bounds the dedup table. IDs are forgotten oldest-first, long
// after any coordinator retry of the batch could still be in flight.
const maxBatchIDs = 4096

// NewNode wraps srv with the replication layer over log. It replays the
// WAL into srv's GraphManager (events at or before the manager's LastTime
// are skipped, so a checkpointed index is topped up rather than
// double-applied) and, in the follower role, starts tailing the primary.
func NewNode(srv *server.Server, log *Log, cfg Config) (*Node, error) {
	n := &Node{
		srv:           srv,
		log:           log,
		selfID:        cfg.SelfID,
		syncFollowers: cfg.SyncFollowers,
		ackTimeout:    cfg.AckTimeout,
		pollWait:      cfg.PollWait,
		fetchMax:      cfg.FetchMax,
		readyMaxLag:   cfg.ReadyMaxLag,
		acks:          make(map[string]uint64),
		ackNotify:     make(chan struct{}),
		batches:       make(map[string]batchSpan),
	}
	if n.selfID == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, err
		}
		n.selfID = hex.EncodeToString(b[:])
	}
	if n.ackTimeout <= 0 {
		n.ackTimeout = DefaultAckTimeout
	}
	if n.pollWait <= 0 {
		n.pollWait = DefaultPollWait
	}
	if n.fetchMax <= 0 {
		n.fetchMax = DefaultFetchMax
	}
	n.hc = cfg.HTTPClient
	if n.hc == nil {
		n.hc = &http.Client{}
	}
	n.newManager = cfg.NewManager
	queueCap := cfg.AppendQueue
	if queueCap <= 0 {
		queueCap = DefaultAppendQueue
	}
	n.streamWindow = cfg.StreamWindow
	if n.streamWindow <= 0 {
		n.streamWindow = DefaultStreamWindow
	}
	n.queue = make(chan *applyReq, queueCap)
	n.quit = make(chan struct{})
	n.applierDone = make(chan struct{})
	n.tailErr.Store("")
	if err := n.replay(); err != nil {
		return nil, err
	}
	// The pipeline's admitted end starts at the replayed log's end: the
	// graph clock covers every durable record after replay.
	n.admittedSeq.Store(log.LastSeq())
	n.admittedAt.Store(int64(srv.Manager().LastTime()))
	go n.applier()

	reg := srv.Metrics()
	log.SetMetrics(reg)
	n.tailFails = reg.Counter("dg_replica_tail_failures_total",
		"Follower tail-loop failures (fetch errors, apply errors, backlog errors).")
	n.reseeds = reg.Counter("dg_replica_reseeds_total",
		"Automated truncate-and-resync runs: the node discarded a diverged WAL and re-tailed from scratch.")
	reg.GaugeFunc("dg_replica_ready", "1 when GET /readyz would answer 200, else 0.",
		func() float64 {
			if _, ready := n.readiness(); ready {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("dg_replica_is_primary", "1 when this node holds the primary role, else 0.",
		func() float64 {
			if n.Role() == RolePrimary {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("dg_replica_applied_seq", "Last WAL sequence applied to the in-memory graph.",
		func() float64 { return float64(n.appliedSeq.Load()) })
	reg.GaugeFunc("dg_replica_primary_head_seq",
		"Primary's durable log end as of the last successful fetch (0 before first contact).",
		func() float64 { return float64(n.primaryHead.Load()) })
	reg.GaugeFunc("dg_wal_last_seq", "Highest sequence number durably stored in the local WAL.",
		func() float64 { return float64(log.LastSeq()) })
	reg.GaugeFunc("dg_wal_size_bytes", "On-disk footprint of the local WAL in bytes.",
		func() float64 { return float64(log.SizeOnDisk()) })
	reg.GaugeFunc("dg_append_pipeline_queue_depth",
		"Append-pipeline batches admitted (written to the WAL) but not yet applied.",
		func() float64 { return float64(n.inflight.Load()) })
	n.stageDur = reg.HistogramVec("dg_append_stage_duration_seconds",
		"Append pipeline per-stage wall time: validate (admission lock, dedup, order check, WAL record write), log (queue wait plus group-commit sync), apply (graph application), ack (follower-ack wait).",
		nil, "stage")

	mux := http.NewServeMux()
	// The replication endpoints are wrapped individually so they share the
	// server's request metrics and request-ID threading; "/" is already
	// instrumented inside srv.Handler() and must not be wrapped twice.
	mux.Handle("POST /append", srv.InstrumentHandler(http.HandlerFunc(n.handleAppend)))
	mux.Handle("GET /replicate", srv.InstrumentHandler(http.HandlerFunc(n.handleReplicate)))
	mux.Handle("GET /replstatus", srv.InstrumentHandler(http.HandlerFunc(n.handleStatus)))
	mux.Handle("POST /role", srv.InstrumentHandler(http.HandlerFunc(n.handleRole)))
	mux.Handle("POST /admin/migrate", srv.InstrumentHandler(http.HandlerFunc(n.handleMigrate)))
	mux.Handle("GET /admin/migrate", srv.InstrumentHandler(http.HandlerFunc(n.handleMigrateStatus)))
	mux.Handle("POST /admin/reseed", srv.InstrumentHandler(http.HandlerFunc(n.handleReseed)))
	// /readyz carries replication state (role, catch-up lag); it shadows the
	// wrapped server's bare always-ready answer.
	mux.Handle("GET /readyz", srv.InstrumentHandler(http.HandlerFunc(n.handleReadyz)))
	mux.Handle("/", srv.Handler())
	n.mux = mux

	if cfg.Role == RoleFollower {
		if cfg.PrimaryURL == "" {
			return nil, fmt.Errorf("replica: follower role requires PrimaryURL")
		}
		n.role.Store(int32(RoleFollower))
		n.mu.Lock()
		n.primaryURL = cfg.PrimaryURL
		n.startTailLocked()
		n.mu.Unlock()
	}
	return n, nil
}

// replay rebuilds the in-memory graph from the local WAL. Events at or
// before the manager's current LastTime are skipped: a fresh manager
// replays everything, a checkpoint-loaded one only the suffix the
// checkpoint predates.
func (n *Node) replay() error {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	if err := n.applyLoggedLocked(n.srv.Manager().LastTime()); err != nil {
		return fmt.Errorf("replica: WAL replay: %w", err)
	}
	return nil
}

// applyLoggedLocked drives the in-memory graph forward from the local WAL
// until every record past appliedSeq is applied or deliberately skipped;
// the caller holds applyMu. It is the one path from log to graph —
// construction-time replay, the follower tail loop, and the applier's
// redrive all run through it — so a record that was durably logged but
// never applied (the process died between the two steps, or a previous
// apply failed) is re-driven from the log instead of silently skipped when
// later records arrive.
//
// checkpointFloor > 0 skips events at or before the checkpoint the graph
// was loaded from (replay tops a checkpoint up, it must not double-apply
// it). Independently, events older than the index clock — which the graph
// rejects — are dropped and counted in wal_skipped rather than treated as
// fatal: the live append path refuses such batches before logging them
// (see handleAppend), so they only exist in WALs written before that guard
// or mirrored from one, and recovery must degrade exactly like the live
// path did — reject the event, keep the node serving.
func (n *Node) applyLoggedLocked(checkpointFloor historygraph.Time) error {
	for {
		recs, err := n.log.Read(n.appliedSeq.Load()+1, n.fetchMax)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return nil
		}
		if err := n.applyRecordsLocked(recs, checkpointFloor); err != nil {
			return err
		}
	}
}

// applyRecordsLocked applies one contiguous run of records (starting at
// appliedSeq+1) to the graph; the caller holds applyMu. Counters, dedup
// spans, and appliedSeq advance only for the settled prefix: on a partial
// apply failure the exact applied count (AppendResult.Appended) marks
// where the run stopped, so the retry resumes at the failing event —
// never re-applying an event that landed (equal timestamps make At-based
// dedup impossible) and never double-counting wal_skipped or inflating a
// batch's dedup span.
func (n *Node) applyRecordsLocked(recs []Record, checkpointFloor historygraph.Time) error {
	clock := n.srv.Manager().LastTime()
	events := make(historygraph.EventList, 0, len(recs))
	seqOf := make([]uint64, 0, len(recs)) // record seq per kept event
	stale := make([]bool, len(recs))      // record was poison (not checkpoint-covered)
	for i, rec := range recs {
		ev, err := server.EventFromJSON(rec.Event)
		if err != nil {
			return fmt.Errorf("replica: WAL record %d: %w", rec.Seq, err)
		}
		switch {
		case checkpointFloor > 0 && ev.At <= checkpointFloor:
			// Already part of the loaded checkpoint.
		case ev.At < clock:
			stale[i] = true // poison record a pre-guard WAL logged
		default:
			events = append(events, ev)
			seqOf = append(seqOf, rec.Seq)
			clock = ev.At
		}
	}
	res, appendErr := n.srv.ApplyEvents(events)
	settled := recs[len(recs)-1].Seq
	if appendErr != nil && res.Appended < len(events) {
		// Everything before the first unapplied event's record is settled
		// (applied or deliberately skipped).
		settled = seqOf[res.Appended] - 1
	}
	skipped := uint64(0)
	for i, rec := range recs {
		if rec.Seq > settled {
			break
		}
		n.recordBatch(rec.Batch, 1, rec.Seq)
		if stale[i] {
			skipped++
		}
	}
	n.walSkipped.Add(skipped)
	if settled > n.appliedSeq.Load() {
		n.appliedSeq.Store(settled)
	}
	return appendErr
}

// recordBatch extends the dedup table with events more records of batch,
// the highest at lastSeq. Records at or below a known span's lastSeq are
// already counted (the redrive path can re-read records admission already
// registered) and are skipped.
func (n *Node) recordBatch(batch string, events int, lastSeq uint64) {
	if batch == "" {
		return
	}
	n.dedupMu.Lock()
	defer n.dedupMu.Unlock()
	span, known := n.batches[batch]
	if known && lastSeq <= span.lastSeq {
		return
	}
	if !known {
		if len(n.batchOrder) >= maxBatchIDs {
			delete(n.batches, n.batchOrder[0])
			n.batchOrder = n.batchOrder[1:]
		}
		n.batchOrder = append(n.batchOrder, batch)
	}
	span.events += events
	if lastSeq > span.lastSeq {
		span.lastSeq = lastSeq
	}
	n.batches[batch] = span
}

// Role returns the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// AppliedSeq returns the last WAL sequence applied to the in-memory graph.
func (n *Node) AppliedSeq() uint64 { return n.appliedSeq.Load() }

// SelfID returns the node's follower-ack identity.
func (n *Node) SelfID() string { return n.selfID }

// Handler returns the node's HTTP handler: the wrapped server's endpoints
// plus /replicate, /replstatus and /role, with /append intercepted.
func (n *Node) Handler() http.Handler { return n.mux }

// Close stops the tail loop and the append pipeline's applier, failing
// any admitted-but-unapplied batches (their records are durably logged
// and replay on restart, exactly like a crash between log and apply). The
// wrapped server and WAL are the caller's to close, in that order.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.stopTailLocked()
	n.mu.Unlock()
	// Stop the migration ingest while the applier still runs: the merger
	// may be mid-migrateAppend, and stopping it first lets that batch
	// settle normally instead of racing the pipeline shutdown.
	n.stopMigration()
	close(n.quit)
	<-n.applierDone
}

// --- append path (primary) -------------------------------------------

// errNodeClosed fails pipeline requests caught by Close.
var errNodeClosed = fmt.Errorf("replica: node closed")

func (n *Node) handleAppend(w http.ResponseWriter, r *http.Request) {
	if !n.srv.CheckEpoch(w, r) {
		return
	}
	if n.Role() != RolePrimary {
		n.mu.Lock()
		primary := n.primaryURL
		n.mu.Unlock()
		server.WriteJSON(w, http.StatusMisdirectedRequest, map[string]string{
			"error":   "replica: this node is a follower; appends go to the primary",
			"primary": primary,
		})
		return
	}
	if server.BoolParam(r.URL.Query().Get("stream")) {
		n.handleAppendStream(w, r)
		return
	}
	var body []server.EventJSON
	if err := server.ReadBody(r, &body); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad append body: %w", err))
		return
	}
	events, err := server.DecodeEvents(body)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	res, status, err := n.append(events, r.URL.Query().Get("batch"))
	if err != nil {
		server.WriteError(w, status, err)
		return
	}
	server.WriteWire(w, r, http.StatusOK, res)
}

// append runs one batch through the pipeline end to end: admit (validate +
// log + enqueue), wait for the applier's answer, then the follower-ack
// wait. It returns the HTTP status to use on error.
func (n *Node) append(events historygraph.EventList, batch string) (server.AppendResult, int, error) {
	ad, status, err := n.admit(events, batch)
	if err != nil {
		return server.AppendResult{}, status, err
	}
	res, err := n.settle(ad)
	if err != nil {
		return server.AppendResult{}, http.StatusInternalServerError, err
	}
	if ad.acked > 0 && n.syncFollowers > 0 {
		ackStart := time.Now()
		if !n.waitForAcks(ad.acked, n.syncFollowers) {
			return server.AppendResult{}, http.StatusServiceUnavailable, fmt.Errorf(
				"replica: %d follower(s) did not confirm seq %d within %v (events are logged and will replicate; batch was NOT acked)",
				n.syncFollowers, ad.acked, n.ackTimeout)
		}
		n.obsStage("ack", ackStart)
	}
	return res, http.StatusOK, nil
}

// admitted is an admission's outcome: either a queued pipeline request
// (req != nil) or a dedup/empty answer the caller can settle without one.
// acked is the sequence the follower-ack wait must cover (0 when nothing
// needs follower confirmation).
type admitted struct {
	req     *applyReq
	res     server.AppendResult // answer when req == nil
	resumed int
	last    uint64
	acked   uint64
}

// admit is stage 1 of the pipeline: under the admission lock it checks the
// dedup table, validates event order against the admitted clock, writes
// the batch's WAL records (without waiting for the group sync), registers
// the dedup span, and enqueues the apply request. The admission lock is
// held for none of the durability or apply work, so admissions overlap
// both — its hold time is the pipeline's serial section.
func (n *Node) admit(events historygraph.EventList, batch string) (admitted, int, error) {
	vStart := time.Now()
	n.admitMu.Lock()
	// Records can sit in the WAL that the pipeline never admitted — a test
	// or tool wrote the log directly, or a mirrored prefix outlived a
	// deposed primary. Drive them through the applier before admitting
	// against the dedup table, exactly like the old backlog drain: the
	// redrive registers their batch spans and advances the graph clock.
	if head := n.log.LastSeq(); head > n.admittedSeq.Load() {
		if err := n.redriveLocked(head); err != nil {
			n.admitMu.Unlock()
			return admitted{}, http.StatusInternalServerError, fmt.Errorf("replica: WAL backlog apply: %w", err)
		}
		n.raiseAdmitted(head, n.srv.Manager().LastTime())
	}
	resumed := 0
	if batch != "" {
		n.dedupMu.Lock()
		span, seen := n.batches[batch]
		n.dedupMu.Unlock()
		if seen {
			if span.events >= len(events) {
				// The whole batch is already in the WAL — a coordinator
				// retrying after a failover or a lost response must not
				// log and apply it twice. Make sure it is applied (the
				// original may still be in flight, or its apply may have
				// failed), then ack it as the original append would have.
				var err error
				if n.appliedSeq.Load() < span.lastSeq {
					err = n.redriveLocked(span.lastSeq)
				}
				n.admitMu.Unlock()
				if err != nil {
					return admitted{}, http.StatusInternalServerError, err
				}
				return admitted{
					res: server.AppendResult{
						Appended: span.events,
						LastTime: int64(n.srv.Manager().LastTime()),
						Seq:      span.lastSeq,
						Deduped:  true,
					},
					last:  span.lastSeq,
					acked: span.lastSeq,
				}, http.StatusOK, nil
			}
			// The node holds only a prefix of the batch: a mid-batch
			// primary failure cut the replication stream short of the
			// last records. Retries resend the identical batch, so append
			// the remainder under the same ID, picking up exactly where
			// the mirrored records stop — a full re-append would
			// duplicate the prefix, a full dedup ack would silently drop
			// the suffix.
			resumed = span.events
			events = events[resumed:]
		}
	}
	// Reject what the graph would reject while the log is still clean: the
	// graph refuses events older than its clock (an ordinary 422), and
	// logging such a batch first would leave poison records that every
	// restart replay and every follower re-hits forever. The admitted
	// clock stands in for the graph clock, which trails it by whatever the
	// pipeline still holds.
	if err := validateOrder(historygraph.Time(n.admittedAt.Load()), events); err != nil {
		n.admitMu.Unlock()
		return admitted{}, http.StatusUnprocessableEntity, err
	}
	if len(events) == 0 {
		seq := n.admittedSeq.Load()
		n.admitMu.Unlock()
		return admitted{
			res: server.AppendResult{
				Appended: resumed,
				LastTime: int64(n.srv.Manager().LastTime()),
				Seq:      seq,
				Deduped:  resumed > 0,
			},
			last: seq,
		}, http.StatusOK, nil
	}
	first, last, err := n.log.StartAppend(events, batch)
	if err != nil {
		n.admitMu.Unlock()
		return admitted{}, http.StatusInternalServerError, fmt.Errorf("replica: WAL append: %w", err)
	}
	// Register the span before the records are even durable: a retry
	// racing the pipeline must dedup against the in-flight original, not
	// append the batch a second time behind it.
	n.recordBatch(batch, len(events), last)
	n.raiseAdmitted(last, events[len(events)-1].At)
	req := &applyReq{events: events, first: first, last: last, start: vStart, done: make(chan applyDone, 1)}
	n.inflight.Add(1)
	n.obsStage("validate", vStart)
	select {
	case n.queue <- req: // blocking here (queue full) is the backpressure
	case <-n.quit:
		n.inflight.Add(-1)
		n.admitMu.Unlock()
		return admitted{}, http.StatusServiceUnavailable, errNodeClosed
	}
	n.admitMu.Unlock()
	return admitted{req: req, resumed: resumed, last: last, acked: last}, http.StatusOK, nil
}

// settle waits for an admission's apply outcome and assembles the final
// AppendResult (follower acks are the caller's, so a dedup ack and a live
// append share one ack path).
func (n *Node) settle(ad admitted) (server.AppendResult, error) {
	if ad.req == nil {
		return ad.res, nil
	}
	d := n.await(ad.req)
	if d.err != nil {
		// Ordering was validated before the WAL write, so this is an
		// internal failure (index store I/O), not a client error; the
		// batch is durably logged and the applier re-drives the unapplied
		// tail on the next append or restart.
		return server.AppendResult{}, d.err
	}
	res := d.res
	res.Seq = ad.last
	res.Appended += ad.resumed
	res.Deduped = ad.resumed > 0
	return res, nil
}

// raiseAdmitted advances the admitted end of the WAL (monotonic).
func (n *Node) raiseAdmitted(seq uint64, at historygraph.Time) {
	for {
		cur := n.admittedSeq.Load()
		if seq <= cur || n.admittedSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	for {
		cur := n.admittedAt.Load()
		if int64(at) <= cur || n.admittedAt.CompareAndSwap(cur, int64(at)) {
			break
		}
	}
}

// redriveLocked (caller holds admitMu) enqueues a redrive request asking
// the applier to drive the graph through WAL sequence `through`, and waits
// for it. Because the queue is FIFO and admissions are serialized, by the
// time the redrive runs every previously admitted batch has been applied.
func (n *Node) redriveLocked(through uint64) error {
	req := &applyReq{last: through, redrive: true, done: make(chan applyDone, 1)}
	n.inflight.Add(1)
	select {
	case n.queue <- req:
	case <-n.quit:
		n.inflight.Add(-1)
		return errNodeClosed
	}
	return n.await(req).err
}

// await blocks for a queued request's answer. The applier always answers
// what it dequeues, but a request enqueued in the same instant Close's
// drain finishes would otherwise wait forever — applierDone breaks the
// race.
func (n *Node) await(req *applyReq) applyDone {
	select {
	case d := <-req.done:
		return d
	case <-n.applierDone:
		select {
		case d := <-req.done:
			return d
		default:
			return applyDone{err: errNodeClosed}
		}
	}
}

// obsStage records one pipeline stage's wall time.
func (n *Node) obsStage(stage string, start time.Time) {
	if n.stageDur != nil {
		n.stageDur.With(stage).Observe(time.Since(start).Seconds())
	}
}

// applier is the pipeline's single apply goroutine: it consumes admitted
// batches in queue order (== WAL sequence order), waits for the group
// commit covering each, and applies them to the graph — the one writer
// that keeps sequence order == apply order while admissions and
// durability waits overlap freely. It exits on Close, failing whatever is
// still queued.
func (n *Node) applier() {
	defer close(n.applierDone)
	for {
		select {
		case req := <-n.queue:
			n.process(req)
		case <-n.quit:
			for {
				select {
				case req := <-n.queue:
					req.done <- applyDone{err: errNodeClosed}
					n.inflight.Add(-1)
				default:
					return
				}
			}
		}
	}
}

// process runs stages 2 and 3 for one request: durability, then in-order
// graph application.
func (n *Node) process(req *applyReq) {
	defer n.inflight.Add(-1)
	logStart := time.Now()
	if err := n.log.WaitDurable(req.last); err != nil {
		req.done <- applyDone{err: fmt.Errorf("replica: WAL append: %w", err)}
		return
	}
	if !req.start.IsZero() {
		n.log.ObserveAppend(req.start)
	}
	n.obsStage("log", logStart)
	applyStart := time.Now()
	n.applyMu.Lock()
	var d applyDone
	switch applied := n.appliedSeq.Load(); {
	case applied >= req.last:
		// A redrive triggered by a later retry already carried these
		// records into the graph.
		d.res = server.AppendResult{Appended: len(req.events), LastTime: int64(n.srv.Manager().LastTime())}
	case !req.redrive && applied == req.first-1:
		// Steady state: the decoded events apply straight from memory.
		res, appendErr := n.srv.ApplyEvents(req.events)
		// res.Appended is the exact applied count even on failure, so
		// appliedSeq settles precisely at the last applied record — never
		// past a hole (which would mislead most-caught-up promotion and
		// in-sync routing) and never behind the true position (which
		// would re-apply landed events on the next redrive).
		if settled := req.last - uint64(len(req.events)-res.Appended); settled > applied {
			n.appliedSeq.Store(settled)
		}
		d = applyDone{res: res, err: appendErr}
	default:
		// A hole precedes this batch (an earlier apply failed partway, or
		// this is a redrive of records the pipeline never decoded): drive
		// the graph forward from the WAL itself.
		err := n.applyLoggedLocked(0)
		if n.appliedSeq.Load() >= req.last {
			// This request's records settled even if a later record
			// failed; the failure belongs to that record's own request.
			d.res = server.AppendResult{Appended: len(req.events), LastTime: int64(n.srv.Manager().LastTime())}
		} else {
			if err == nil {
				err = fmt.Errorf("replica: WAL redrive stopped at seq %d before %d", n.appliedSeq.Load(), req.last)
			}
			d.err = err
		}
	}
	n.applyMu.Unlock()
	n.obsStage("apply", applyStart)
	req.done <- d
}

// validateOrder rejects a batch the graph would refuse: events must be
// time-ordered within the batch and none may predate clock (the index
// only ever moves forward). It mirrors the deltagraph append check so a
// rejection happens before anything reaches the WAL.
func validateOrder(clock historygraph.Time, events historygraph.EventList) error {
	for _, ev := range events {
		if ev.At < clock {
			return fmt.Errorf("replica: event at %d is older than last event at %d", ev.At, clock)
		}
		clock = ev.At
	}
	return nil
}

// recordAck notes that follower id has durably logged every record up to
// seq.
func (n *Node) recordAck(id string, seq uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.acks[id] >= seq {
		return
	}
	n.acks[id] = seq
	close(n.ackNotify)
	n.ackNotify = make(chan struct{})
}

// waitForAcks blocks until count followers have acked seq or AckTimeout
// elapses.
func (n *Node) waitForAcks(seq uint64, count int) bool {
	deadline := time.NewTimer(n.ackTimeout)
	defer deadline.Stop()
	for {
		n.mu.Lock()
		got := 0
		for _, a := range n.acks {
			if a >= seq {
				got++
			}
		}
		ch := n.ackNotify
		n.mu.Unlock()
		if got >= count {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return false
		}
	}
}

// --- replication stream (primary side) --------------------------------

// replicateResponse is the GET /replicate body. NextFrom and LastTime are
// set on slot-filtered fetches only: filtered-out records still advance
// the scan, so the puller resumes at NextFrom rather than past the last
// returned record; LastTime is the source's safe time horizon — every
// record it will ever serve past NextFrom carries an event time at or
// after it (WAL records are time-ordered).
type replicateResponse struct {
	Records  []Record `json:"records"`
	LastSeq  uint64   `json:"last_seq"`
	NextFrom uint64   `json:"next_from,omitempty"`
	LastTime int64    `json:"last_time,omitempty"`
}

func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("replicate wants from=<seq> >= 1"))
		return
	}
	max := n.fetchMax
	if mq := q.Get("max"); mq != "" {
		if m, err := strconv.Atoi(mq); err == nil && m > 0 && m < max {
			max = m
		}
	}
	var slots *slotSet
	if sq := q.Get("slots"); sq != "" {
		if q.Get("id") != "" {
			server.WriteError(w, http.StatusBadRequest,
				fmt.Errorf("slots= and id= are mutually exclusive: a migration fetch is not a follower ack"))
			return
		}
		ss, err := parseSlotBitmap(sq)
		if err != nil {
			server.WriteError(w, http.StatusBadRequest, err)
			return
		}
		slots = &ss
	} else if id := q.Get("id"); id != "" && from > 1 {
		// from=N acknowledges that the caller has durably logged 1..N-1.
		n.recordAck(id, from-1)
	}
	if wq := q.Get("wait"); wq != "" {
		if wait, err := time.ParseDuration(wq); err == nil && wait > 0 {
			if wait > n.pollWait {
				wait = n.pollWait
			}
			n.log.Wait(from-1, wait) // long-poll until the log grows past from-1
		}
	}
	recs, err := n.log.Read(from, max)
	if err != nil {
		server.WriteError(w, http.StatusInternalServerError, err)
		return
	}
	binary := wire.Negotiate(r.Header.Get("Accept")).Name() == wire.NameBinary
	if slots != nil {
		// The scan cursor and time horizon come from the unfiltered page:
		// a record outside the requested slots is consumed (never served
		// to this puller again) and still bounds the times of everything
		// after it.
		nextFrom := from
		var lastTime int64
		if len(recs) > 0 {
			nextFrom = recs[len(recs)-1].Seq + 1
			lastTime = recs[len(recs)-1].Event.At
		}
		kept := recs[:0]
		for _, rec := range recs {
			if slots.has(graph.Slot(historygraph.NodeID(rec.Event.Node))) {
				kept = append(kept, rec)
			}
		}
		if binary {
			w.Header().Set("Content-Type", wire.ContentTypeBinary)
			w.WriteHeader(http.StatusOK)
			w.Write(encodeReplicateSlots(kept, n.log.LastSeq(), nextFrom, lastTime))
			return
		}
		server.WriteJSON(w, http.StatusOK, replicateResponse{
			Records: kept, LastSeq: n.log.LastSeq(), NextFrom: nextFrom, LastTime: lastTime,
		})
		return
	}
	// Followers ask for the binary stream (one encoder per batch, interned
	// keys, no per-record JSON); anything else gets the JSON body so old
	// followers keep tailing a new primary.
	if binary {
		w.Header().Set("Content-Type", wire.ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		w.Write(encodeReplicate(recs, n.log.LastSeq()))
		return
	}
	server.WriteJSON(w, http.StatusOK, replicateResponse{Records: recs, LastSeq: n.log.LastSeq()})
}

// --- status and role control ------------------------------------------

// StatusJSON answers GET /replstatus; the shard coordinator's health
// checks and failover decisions read it.
type StatusJSON struct {
	ID         string `json:"id"`
	Role       string `json:"role"`
	Primary    string `json:"primary,omitempty"`
	LastSeq    uint64 `json:"last_seq"`
	AppliedSeq uint64 `json:"applied_seq"`
	// LogAppliedGap is LastSeq - AppliedSeq: durably logged records the
	// in-memory graph has not absorbed yet. Under load it tracks the
	// append pipeline's in-flight depth (batches between their group
	// commit and their apply); a gap that persists while the node is idle
	// means apply is failing — check wal_skipped and the node's log.
	LogAppliedGap uint64 `json:"log_applied_gap"`
	// WALSkipped counts logged records the graph rejected as out of order
	// and recovery deliberately skipped (poison from a WAL written before
	// the validate-before-log guard). Non-zero means the log holds records
	// that are not in the graph — worth an operator's look, not fatal.
	WALSkipped uint64 `json:"wal_skipped,omitempty"`
	TailError  string `json:"tail_error,omitempty"`
	// Reseeds counts completed automated truncate-and-resync runs: each is
	// one diverged WAL this node discarded and rebuilt from its primary.
	Reseeds uint64 `json:"reseeds,omitempty"`
	// Migration is the slot-migration ingest state, present once a
	// migration has been started on this node (resharding target).
	Migration *MigrateStatus `json:"migration,omitempty"`
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	primary := n.primaryURL
	n.mu.Unlock()
	last, applied := n.log.LastSeq(), n.appliedSeq.Load()
	gap := uint64(0)
	if last > applied {
		gap = last - applied
	}
	server.WriteJSON(w, http.StatusOK, StatusJSON{
		ID:            n.selfID,
		Role:          n.Role().String(),
		Primary:       primary,
		LastSeq:       last,
		AppliedSeq:    applied,
		LogAppliedGap: gap,
		WALSkipped:    n.walSkipped.Load(),
		TailError:     n.tailErr.Load().(string),
		Reseeds:       n.reseedN.Load(),
		Migration:     n.migrationStatus(),
	})
}

// readiness reports whether the node should receive traffic, and why not
// when it shouldn't. A primary is ready once its graph has absorbed its
// whole WAL. A follower is ready when its tail loop is healthy, it has
// reached its primary at least once, and its applied position trails the
// primary's last known head by at most ReadyMaxLag records.
func (n *Node) readiness() (reason string, ready bool) {
	if n.Role() == RolePrimary {
		// A durable-vs-applied gap with pipeline work in flight is the
		// healthy steady state under load — the applier is draining it.
		// Only a gap with nothing in flight is a real backlog (an apply
		// failed, or the log was written behind the pipeline's back).
		if applied, head := n.appliedSeq.Load(), n.log.LastSeq(); applied != head && n.inflight.Load() == 0 {
			return fmt.Sprintf("WAL backlog: applied seq %d, log ends at %d", applied, head), false
		}
		return "", true
	}
	if msg := n.tailErr.Load().(string); msg != "" {
		return "tail loop failing: " + msg, false
	}
	if !n.headKnown.Load() {
		return "no successful fetch from the primary yet", false
	}
	if applied, head := n.appliedSeq.Load(), n.primaryHead.Load(); applied+n.readyMaxLag < head {
		return fmt.Sprintf("lagging primary: applied seq %d, primary head %d, max lag %d",
			applied, head, n.readyMaxLag), false
	}
	return "", true
}

// handleReadyz answers GET /readyz with the node's replication readiness:
// 200 when the node should receive traffic, 503 with a reason when it is
// catching up, cut off from its primary, or draining a WAL backlog.
// Liveness stays on /healthz, which the wrapped server answers.
func (n *Node) handleReadyz(w http.ResponseWriter, r *http.Request) {
	role := n.Role().String()
	if reason, ready := n.readiness(); !ready {
		server.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "not ready",
			"role":   role,
			"reason": reason,
		})
		return
	}
	server.WriteJSON(w, http.StatusOK, map[string]string{"status": "ready", "role": role})
}

// RoleRequest is the POST /role body: {"role":"primary"} promotes,
// {"role":"follower","primary":"http://..."} (re)points a follower.
type RoleRequest struct {
	Role    string `json:"role"`
	Primary string `json:"primary,omitempty"`
}

func (n *Node) handleRole(w http.ResponseWriter, r *http.Request) {
	var req RoleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad role body: %w", err))
		return
	}
	switch req.Role {
	case "primary":
		n.Promote()
	case "follower":
		if req.Primary == "" {
			server.WriteError(w, http.StatusBadRequest, fmt.Errorf("follower role wants a primary URL"))
			return
		}
		n.Follow(req.Primary)
	default:
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("unknown role %q (want primary or follower)", req.Role))
		return
	}
	n.handleStatus(w, r)
}

// Promote switches the node to the primary role: the tail loop stops and
// external appends are accepted from now on. Idempotent.
func (n *Node) Promote() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopTailLocked()
	n.primaryURL = ""
	n.role.Store(int32(RolePrimary))
	n.tailErr.Store("")
}

// Follow switches the node to the follower role tailing primaryURL,
// restarting the tail loop if it was already following elsewhere.
func (n *Node) Follow(primaryURL string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopTailLocked()
	n.primaryURL = primaryURL
	n.role.Store(int32(RoleFollower))
	// The head position learned from a previous primary says nothing about
	// the new one; /readyz must wait for first contact again.
	n.headKnown.Store(false)
	n.primaryHead.Store(0)
	n.tailErr.Store("")
	if !n.closed {
		n.startTailLocked()
	}
}

// --- follower tail loop -----------------------------------------------

func (n *Node) startTailLocked() {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	n.tailCancel = cancel
	n.tailDone = done
	primary := n.primaryURL
	go n.tailLoop(ctx, primary, done)
}

func (n *Node) stopTailLocked() {
	if n.tailCancel != nil {
		n.tailCancel()
		<-n.tailDone
		n.tailCancel = nil
		n.tailDone = nil
	}
}

// tailLoop fetches records from the primary and applies them in order:
// local WAL first (synced), then the in-memory graph — the same
// durability order the primary itself uses, so a follower crash replays
// its own log and re-fetches only what it never stored.
func (n *Node) tailLoop(ctx context.Context, primary string, done chan struct{}) {
	defer close(done)
	backoff := func() bool {
		select {
		case <-time.After(DefaultRetryDelay):
			return true
		case <-ctx.Done():
			return false
		}
	}
	// Lineage handshake: before mirroring anything, verify the local log
	// is a prefix of the primary's. A deposed primary rejoining as a
	// follower can hold an unacked tail the new primary never had — with a
	// plain fetch from LastSeq+1 that divergence is silent (the primary's
	// head is simply shorter, the loop idles "caught up" with conflicting
	// history). Detected divergence triggers the automated
	// truncate-and-resync when a manager factory is configured.
	for ctx.Err() == nil {
		diverged, err := n.checkLineage(ctx, primary)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			n.tailErr.Store(err.Error())
			n.tailFails.Inc()
			if !backoff() {
				return
			}
			continue
		}
		if !diverged {
			break
		}
		if err := n.reseed(primary); err != nil {
			n.tailErr.Store(err.Error())
			n.tailFails.Inc()
			if !backoff() {
				return
			}
			continue
		}
		n.tailErr.Store("")
		break
	}
	for ctx.Err() == nil {
		// Logged-but-unapplied records come first: fetch resumes from the
		// log's end, so anything a failed or interrupted apply left behind
		// must catch up from the local log, not the network — otherwise a
		// later successful batch would advance appliedSeq past the hole
		// and the member would report in-sync with events missing from its
		// graph.
		if err := n.applyBacklog(); err != nil {
			n.tailErr.Store(err.Error())
			n.tailFails.Inc()
			if !backoff() {
				return
			}
			continue
		}
		recs, err := n.fetch(ctx, primary)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			n.tailErr.Store(err.Error())
			n.tailFails.Inc()
			if !backoff() {
				return
			}
			continue
		}
		n.tailErr.Store("")
		if len(recs) == 0 {
			continue // long-poll expired with nothing new
		}
		if err := n.apply(recs); err != nil {
			// A sequence gap or apply failure means the logs diverged
			// (e.g. this node outlived a deposed primary's unacked tail).
			// Surface it in /replstatus and keep retrying — the operator
			// must re-seed the WAL dir.
			n.tailErr.Store(err.Error())
			n.tailFails.Inc()
			if !backoff() {
				return
			}
		}
	}
}

// fetch long-polls the primary for records past the local log end.
func (n *Node) fetch(ctx context.Context, primary string) ([]Record, error) {
	from := n.log.LastSeq() + 1
	body, err := n.fetchReplicate(ctx, fmt.Sprintf("%s/replicate?from=%d&max=%d&wait=%s&id=%s",
		primary, from, n.fetchMax, n.pollWait, n.selfID))
	if err != nil {
		return nil, err
	}
	n.noteHead(body.LastSeq)
	return body.Records, nil
}

// fetchReplicate runs one GET against a /replicate URL and decodes the
// response. It advertises the binary stream; a primary that predates it
// answers JSON and the Content-Type tells the two apart. The tail loop,
// the lineage handshake, and the migration puller all fetch through it.
func (n *Node) fetchReplicate(ctx context.Context, url string) (replicateResponse, error) {
	reqCtx, cancel := context.WithTimeout(ctx, n.pollWait+10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
	if err != nil {
		return replicateResponse{}, err
	}
	req.Header.Set("Accept", wire.ContentTypeBinary)
	resp, err := n.hc.Do(req)
	if err != nil {
		return replicateResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return replicateResponse{}, fmt.Errorf("replica: primary answered HTTP %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return replicateResponse{}, err
	}
	if wire.ForContentType(resp.Header.Get("Content-Type")).Name() == wire.NameBinary {
		return decodeReplicate(raw)
	}
	var body replicateResponse
	if err := json.Unmarshal(raw, &body); err != nil {
		return replicateResponse{}, err
	}
	return body, nil
}

// noteHead records the primary's durable log end from a fetch response;
// /readyz compares it against the local applied position.
func (n *Node) noteHead(head uint64) {
	n.primaryHead.Store(head)
	n.headKnown.Store(true)
}

// apply mirrors fetched records into the local WAL, then drives the graph
// forward. In the steady state (no backlog) the fetched records are
// applied straight from memory; only when logged-but-unapplied records
// precede them does the slower read-back-from-the-log path run.
func (n *Node) apply(recs []Record) error {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	caughtUp := n.appliedSeq.Load() == n.log.LastSeq()
	if err := n.log.AppendRecords(recs); err != nil {
		return err
	}
	// The mirrored records are durable: raise the admitted marks and
	// register their dedup spans now, before the graph apply, so a
	// promotion that lands between the two steps still sees them — the
	// first post-promotion retry of a half-replicated batch must dedup
	// and resume, not re-append.
	for _, rec := range recs {
		n.raiseAdmitted(rec.Seq, historygraph.Time(rec.Event.At))
		n.recordBatch(rec.Batch, 1, rec.Seq)
	}
	if !caughtUp {
		return n.applyLoggedLocked(0)
	}
	for len(recs) > 0 && recs[0].Seq <= n.appliedSeq.Load() {
		recs = recs[1:] // overlapping re-fetch, already settled
	}
	if len(recs) == 0 {
		return nil
	}
	return n.applyRecordsLocked(recs, 0)
}

// applyBacklog applies any records sitting in the local WAL but not yet in
// the graph — the recovery half of the tail loop's fetch/apply cycle.
func (n *Node) applyBacklog() error {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	return n.applyLoggedLocked(0)
}
