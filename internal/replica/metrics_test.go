package replica_test

// Readiness and metrics coverage for replica nodes: /readyz must track
// the replication state machine (not mere process liveness), and the
// node's /metrics plane must expose the WAL and replication series the
// operations runbook alerts on.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"historygraph/internal/metrics"
	"historygraph/internal/replica"
	"historygraph/internal/server"
)

// readyz GETs baseURL/readyz and returns the status code and body.
func readyz(t testing.TB, baseURL string) (int, string) {
	t.Helper()
	resp, err := http.Get(baseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// waitReadyz polls until baseURL/readyz answers want, failing the test on
// timeout.
func waitReadyz(t testing.TB, baseURL string, want int) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := readyz(t, baseURL)
		if code == want {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s/readyz stuck at HTTP %d (%s), want %d", baseURL, code, body, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadyzFlip: a follower pointed at a dead primary must answer
// /readyz 503 while /healthz stays 200 (alive but not servable); after
// re-pointing at a live primary and catching up it must flip to 200.
func TestReadyzFlip(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.log"), replica.Config{Role: replica.RolePrimary})
	events := testEvents(20, 1)
	res, err := server.NewClient(primary.hs.URL).Append(events)
	if err != nil {
		t.Fatal(err)
	}
	if code, body := readyz(t, primary.hs.URL); code != http.StatusOK {
		t.Fatalf("caught-up primary /readyz: HTTP %d (%s), want 200", code, body)
	}

	// A primary that never comes up: the follower can establish no
	// contact, so it must refuse traffic.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	follower := startNode(t, filepath.Join(dir, "f.log"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: dead.URL, PollWait: 100 * time.Millisecond,
	})
	code, reason := readyz(t, follower.hs.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("cut-off follower /readyz: HTTP %d (%s), want 503", code, reason)
	}
	// Liveness is a different question with a different answer.
	healthz, err := http.Get(follower.hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, healthz.Body)
	healthz.Body.Close()
	if healthz.StatusCode != http.StatusOK {
		t.Fatalf("cut-off follower /healthz: HTTP %d, want 200 (the process is alive)", healthz.StatusCode)
	}

	// Re-point at the real primary: the follower catches up and flips.
	follower.node.Follow(primary.hs.URL)
	body := waitReadyz(t, follower.hs.URL, http.StatusOK)
	waitApplied(t, follower.hs.URL, res.Seq)
	if !strings.Contains(body, `"role":"follower"`) {
		t.Fatalf("ready follower body %s does not name its role", body)
	}
}

// TestNodeMetricsExposition: a replica node's /metrics must lint and
// carry the WAL durability and replication-readiness series after an
// append has been logged, synced, and replicated.
func TestNodeMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.log"), replica.Config{Role: replica.RolePrimary})
	events := testEvents(10, 1)
	res, err := server.NewClient(primary.hs.URL).Append(events)
	if err != nil {
		t.Fatal(err)
	}
	follower := startNode(t, filepath.Join(dir, "f.log"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 100 * time.Millisecond,
	})
	waitApplied(t, follower.hs.URL, res.Seq)
	waitReadyz(t, follower.hs.URL, http.StatusOK)

	for _, tc := range []struct {
		name    string
		url     string
		primary float64
	}{
		{"primary", primary.hs.URL, 1},
		{"follower", follower.hs.URL, 0},
	} {
		text := string(rawGET(t, tc.url+"/metrics"))
		if err := metrics.Lint(text); err != nil {
			t.Fatalf("%s exposition does not lint: %v", tc.name, err)
		}
		samples, err := metrics.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		get := func(name string) float64 {
			for _, s := range samples {
				if s.Name == name {
					return s.Value
				}
			}
			t.Fatalf("%s exposition missing %s", tc.name, name)
			return 0
		}
		if v := get("dg_replica_ready"); v != 1 {
			t.Errorf("%s dg_replica_ready = %v, want 1", tc.name, v)
		}
		if v := get("dg_replica_is_primary"); v != tc.primary {
			t.Errorf("%s dg_replica_is_primary = %v, want %v", tc.name, v, tc.primary)
		}
		if v := get("dg_wal_fsync_duration_seconds_count"); v < 1 {
			t.Errorf("%s WAL fsync histogram never observed a sync (count %v)", tc.name, v)
		}
		if v := get("dg_wal_append_duration_seconds_count"); v < 1 {
			t.Errorf("%s WAL append histogram empty (count %v)", tc.name, v)
		}
		if v, want := get("dg_wal_records_total"), float64(len(events)); v != want {
			t.Errorf("%s dg_wal_records_total = %v, want %v", tc.name, v, want)
		}
		if v, want := get("dg_replica_applied_seq"), float64(res.Seq); v != want {
			t.Errorf("%s dg_replica_applied_seq = %v, want %v", tc.name, v, want)
		}
		if v := get("dg_http_requests_total"); v < 1 {
			t.Errorf("%s has no instrumented request series (%v)", tc.name, v)
		}
	}
}
