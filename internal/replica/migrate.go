package replica

// The slot-migration ingest: the data-movement half of elastic
// resharding. A fresh, empty replica-set primary (the migration target)
// pulls the moving slots' entire event history from the partitions
// giving them up, by tailing their WALs through the slot-filtered
// GET /replicate?slots=... stream, and re-admits every record through its
// own append pipeline — so the target ends up with an ordinary WAL of
// its own, its followers replicate it the ordinary way, and the batch
// dedup table is populated exactly as if the events had been appended
// live (a post-cutover coordinator retry of an already-migrated batch
// dedups instead of double-applying).
//
// With more than one source (a merge), records are interleaved into one
// globally time-ordered stream: each source's WAL is time-ordered, so a
// k-way merge by event time works, gated by a safe horizon — a record is
// applied only once every other source has proven (via the buffered
// records or the last_time horizon of its latest fetch) that it will
// never serve an earlier one. The coordinator finishes a migration by
// gating appends at the sources, posting their frozen WAL heads
// ({"finalize": [...]}), and waiting for done=true: a finalized source
// whose cursor passed its final head is exhausted and stops bounding the
// merge.
//
// Batch groups can be split by page boundaries and by the slot filter;
// that is fine because migrateAppend bypasses the dedup-resume logic
// (the migration stream is the target's only writer) while still
// accumulating each batch's span in the dedup table.

import (
	"context"
	"encoding/hex"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/graph"
	"historygraph/internal/server"
)

// slotSet is a membership bitmap over the hash-slot space.
type slotSet [graph.NumSlots]bool

func (s *slotSet) has(slot int) bool { return s[slot] }

// encodeSlotBitmap renders a slot list as the hex bitmap the ?slots=
// replicate parameter carries: graph.NumSlots/4 hex characters, slot s
// stored as bit s%8 of byte s/8.
func encodeSlotBitmap(slots []int) string {
	var b [graph.NumSlots / 8]byte
	for _, s := range slots {
		if s >= 0 && s < graph.NumSlots {
			b[s/8] |= 1 << (s % 8)
		}
	}
	return hex.EncodeToString(b[:])
}

// parseSlotBitmap decodes the ?slots= hex bitmap.
func parseSlotBitmap(s string) (slotSet, error) {
	var out slotSet
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != graph.NumSlots/8 {
		return out, fmt.Errorf("replica: bad slots bitmap %q (want %d hex chars)", s, graph.NumSlots/4)
	}
	for i := 0; i < graph.NumSlots; i++ {
		if raw[i/8]&(1<<(i%8)) != 0 {
			out[i] = true
		}
	}
	return out, nil
}

// MigrateSource names one migration source: the member URLs of the
// replica set giving up slots (any member with the records serves; the
// puller rotates on failure, so a mid-migration failover at the source
// only costs a retry) and the slots moving from it.
type MigrateSource struct {
	URLs  []string `json:"urls"`
	Slots []int    `json:"slots"`
}

// MigrateRequest is the POST /admin/migrate body; exactly one action per
// request. Sources starts a migration on an empty target, Finalize
// freezes the per-source final WAL heads (same order as Sources; the
// coordinator posts it after gating appends), Stop tears the ingest
// down.
type MigrateRequest struct {
	Sources  []MigrateSource `json:"sources,omitempty"`
	Finalize []uint64        `json:"finalize,omitempty"`
	Stop     bool            `json:"stop,omitempty"`
}

// MigrateStatus reports the ingest's progress: GET /admin/migrate, also
// embedded in /replstatus. Done means every source is exhausted and every
// migrated record has been applied to the graph.
type MigrateStatus struct {
	Active  bool                  `json:"active"`
	Done    bool                  `json:"done"`
	Applied uint64                `json:"events_applied"`
	Error   string                `json:"error,omitempty"`
	Sources []MigrateSourceStatus `json:"sources,omitempty"`
}

// MigrateSourceStatus is one source's cursor state.
type MigrateSourceStatus struct {
	URL       string `json:"url"` // member currently fetched from
	NextFrom  uint64 `json:"next_from"`
	Head      uint64 `json:"head"` // source durable head at last fetch
	Horizon   int64  `json:"horizon"`
	Buffered  int    `json:"buffered"`
	FinalHead uint64 `json:"final_head,omitempty"`
	Finalized bool   `json:"finalized,omitempty"`
	Exhausted bool   `json:"exhausted"`
}

// migration is one running (or finished) slot-migration ingest.
type migration struct {
	n       *Node
	sources []*migSource
	applied atomic.Uint64
	cancel  context.CancelFunc
	done    chan struct{}

	// mu guards err/donef and every migSource field: the merger goroutine
	// mutates them, the status handlers read them.
	mu    sync.Mutex
	err   string
	donef bool
}

// migSource is one source's puller state. Only the merger goroutine
// mutates it (finalize excepted), always under migration.mu.
type migSource struct {
	urls      []string
	cur       int // rotating member index
	bitmap    string
	nextFrom  uint64
	head      uint64
	horizon   int64
	finalized bool
	final     uint64
	buf       []Record // slot-filtered records pending apply, time-ordered
}

func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := server.ReadBody(r, &req); err != nil {
		server.WriteError(w, http.StatusBadRequest, fmt.Errorf("bad migrate body: %w", err))
		return
	}
	switch {
	case req.Stop:
		n.stopMigration()
	case len(req.Finalize) > 0:
		if err := n.finalizeMigration(req.Finalize); err != nil {
			server.WriteError(w, http.StatusConflict, err)
			return
		}
	case len(req.Sources) > 0:
		if status, err := n.startMigration(req.Sources); err != nil {
			server.WriteError(w, status, err)
			return
		}
	default:
		server.WriteError(w, http.StatusBadRequest,
			fmt.Errorf("migrate wants sources (start), finalize (freeze heads), or stop"))
		return
	}
	n.handleMigrateStatus(w, r)
}

func (n *Node) handleMigrateStatus(w http.ResponseWriter, r *http.Request) {
	st := n.migrationStatus()
	if st == nil {
		st = &MigrateStatus{}
	}
	server.WriteJSON(w, http.StatusOK, st)
}

// startMigration launches the ingest. The target must be a primary (its
// followers replicate the migrated records the ordinary way) with an
// empty WAL: resuming a half-migrated target is not supported — a failed
// migration is aborted and restarted against a fresh (or re-seeded)
// target, which the exact-seq WAL oracle can then verify from scratch.
func (n *Node) startMigration(sources []MigrateSource) (int, error) {
	if n.Role() != RolePrimary {
		return http.StatusUnprocessableEntity, fmt.Errorf("replica: migration target must be a primary")
	}
	n.migMu.Lock()
	defer n.migMu.Unlock()
	if m := n.mig; m != nil {
		select {
		case <-m.done:
		default:
			return http.StatusConflict, fmt.Errorf("replica: a migration is already running")
		}
	}
	if last := n.log.LastSeq(); last != 0 {
		return http.StatusUnprocessableEntity, fmt.Errorf(
			"replica: migration target must start with an empty WAL (log ends at %d); provision a fresh node", last)
	}
	m := &migration{n: n, done: make(chan struct{})}
	for i, s := range sources {
		if len(s.URLs) == 0 || len(s.Slots) == 0 {
			return http.StatusUnprocessableEntity, fmt.Errorf("replica: migration source %d wants urls and slots", i)
		}
		for _, sl := range s.Slots {
			if sl < 0 || sl >= graph.NumSlots {
				return http.StatusUnprocessableEntity,
					fmt.Errorf("replica: migration source %d: slot %d out of range [0, %d)", i, sl, graph.NumSlots)
			}
		}
		m.sources = append(m.sources, &migSource{urls: s.URLs, bitmap: encodeSlotBitmap(s.Slots), nextFrom: 1})
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	n.mig = m
	go m.run(ctx)
	return 0, nil
}

// stopMigration cancels the ingest and waits for the merger goroutine to
// exit. Idempotent; the final status stays readable.
func (n *Node) stopMigration() {
	n.migMu.Lock()
	m := n.mig
	n.migMu.Unlock()
	if m == nil {
		return
	}
	m.cancel()
	<-m.done
}

// finalizeMigration freezes each source's final WAL head (posted by the
// coordinator after it gated appends at the sources). Once a source's
// cursor passes its final head and its buffer drains, it is exhausted:
// it stops bounding the time merge and the migration can finish.
func (n *Node) finalizeMigration(heads []uint64) error {
	n.migMu.Lock()
	m := n.mig
	n.migMu.Unlock()
	if m == nil {
		return fmt.Errorf("replica: no migration to finalize")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(heads) != len(m.sources) {
		return fmt.Errorf("replica: finalize wants %d head(s), got %d", len(m.sources), len(heads))
	}
	for i, h := range heads {
		m.sources[i].finalized = true
		m.sources[i].final = h
	}
	return nil
}

// migrationStatus snapshots the ingest state (nil if none was started).
func (n *Node) migrationStatus() *MigrateStatus {
	n.migMu.Lock()
	m := n.mig
	n.migMu.Unlock()
	if m == nil {
		return nil
	}
	return m.status()
}

func (m *migration) status() *MigrateStatus {
	active := true
	select {
	case <-m.done:
		active = false
	default:
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &MigrateStatus{Active: active, Done: m.donef, Applied: m.applied.Load(), Error: m.err}
	for _, src := range m.sources {
		st.Sources = append(st.Sources, MigrateSourceStatus{
			URL:       src.urls[src.cur],
			NextFrom:  src.nextFrom,
			Head:      src.head,
			Horizon:   src.horizon,
			Buffered:  len(src.buf),
			FinalHead: src.final,
			Finalized: src.finalized,
			Exhausted: src.finalized && src.nextFrom > src.final && len(src.buf) == 0,
		})
	}
	return st
}

// exhausted reports whether a source can never contribute another record.
func (m *migration) exhausted(src *migSource) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return src.finalized && src.nextFrom > src.final && len(src.buf) == 0
}

func (m *migration) allExhausted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, src := range m.sources {
		if !src.finalized || src.nextFrom <= src.final || len(src.buf) > 0 {
			return false
		}
	}
	return true
}

// run is the merger goroutine: refill empty source buffers, apply every
// safely ordered run, repeat until every source is exhausted or the
// migration is stopped. Fetch failures rotate through the source's
// members and are retried forever (surfaced in the status); apply
// failures are fatal to the migration.
func (m *migration) run(ctx context.Context) {
	defer close(m.done)
	progressed := true
	for ctx.Err() == nil {
		// Long-poll only when the previous round achieved nothing, so a
		// live tail blocks in the fetch instead of spinning.
		var wait time.Duration
		if !progressed {
			wait = m.n.pollWait
			if wait > 2*time.Second {
				wait = 2 * time.Second
			}
		}
		fetched := false
		for _, src := range m.sources {
			if ctx.Err() != nil {
				return
			}
			if len(src.buf) > 0 || m.exhausted(src) {
				continue
			}
			if m.fetchPage(ctx, src, wait) {
				fetched = true
			}
		}
		applied, err := m.drain()
		if err != nil {
			m.mu.Lock()
			m.err = err.Error()
			m.mu.Unlock()
			return
		}
		if m.allExhausted() {
			m.mu.Lock()
			m.donef = true
			m.mu.Unlock()
			return
		}
		progressed = applied || fetched
		if !progressed && wait > 0 {
			// Long-polled and still nothing (or every member down): pace
			// the retry loop.
			select {
			case <-time.After(DefaultRetryDelay):
			case <-ctx.Done():
				return
			}
		}
	}
}

// fetchPage pulls one slot-filtered page for src, rotating through its
// member URLs on failure. It reports whether the cursor advanced or
// records arrived.
func (m *migration) fetchPage(ctx context.Context, src *migSource, wait time.Duration) bool {
	var lastErr error
	for k := 0; k < len(src.urls); k++ {
		u := src.urls[(src.cur+k)%len(src.urls)]
		url := fmt.Sprintf("%s/replicate?from=%d&max=%d&slots=%s", u, src.nextFrom, m.n.fetchMax, src.bitmap)
		if wait > 0 {
			url += "&wait=" + wait.String()
		}
		resp, err := m.n.fetchReplicate(ctx, url)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.NextFrom == 0 {
			// A plain (unfiltered) response: the member predates slot
			// replication. Its records are unusable as a filtered stream.
			lastErr = fmt.Errorf("replica: migration source %s does not support slot-filtered replication", u)
			continue
		}
		m.mu.Lock()
		src.cur = (src.cur + k) % len(src.urls)
		advanced := resp.NextFrom > src.nextFrom || len(resp.Records) > 0
		src.nextFrom = resp.NextFrom
		src.head = resp.LastSeq
		if resp.LastTime > src.horizon {
			src.horizon = resp.LastTime
		}
		src.buf = append(src.buf, resp.Records...)
		m.err = ""
		m.mu.Unlock()
		return advanced
	}
	if lastErr != nil && ctx.Err() == nil {
		m.mu.Lock()
		m.err = lastErr.Error()
		m.mu.Unlock()
	}
	return false
}

// drain applies every buffered record that is safely ordered: pick the
// source whose buffer head carries the earliest event time, take the
// longest prefix whose times stay at or below every other source's bound
// (its buffer head if it has one, +inf if exhausted, its fetch horizon
// otherwise), and admit it through the append pipeline in contiguous
// same-batch groups. Repeats until nothing more is safe.
func (m *migration) drain() (bool, error) {
	appliedAny := false
	for {
		best := -1
		for i, src := range m.sources {
			if len(src.buf) == 0 {
				continue
			}
			if best == -1 || src.buf[0].Event.At < m.sources[best].buf[0].Event.At {
				best = i
			}
		}
		if best == -1 {
			return appliedAny, nil
		}
		src := m.sources[best]
		bound := int64(math.MaxInt64)
		for j, other := range m.sources {
			if j == best {
				continue
			}
			var b int64
			switch {
			case len(other.buf) > 0:
				b = other.buf[0].Event.At
			case m.exhausted(other):
				b = math.MaxInt64
			default:
				b = other.horizon
			}
			if b < bound {
				bound = b
			}
		}
		cut := 0
		for cut < len(src.buf) && src.buf[cut].Event.At <= bound {
			cut++
		}
		if cut == 0 {
			return appliedAny, nil
		}
		run := src.buf[:cut]
		for len(run) > 0 {
			g := 1
			for g < len(run) && run[g].Batch == run[0].Batch {
				g++
			}
			events, err := decodeRecords(run[:g])
			if err != nil {
				return appliedAny, err
			}
			if err := m.n.migrateAppend(events, run[0].Batch); err != nil {
				return appliedAny, err
			}
			m.applied.Add(uint64(g))
			run = run[g:]
		}
		m.mu.Lock()
		src.buf = src.buf[cut:]
		m.mu.Unlock()
		appliedAny = true
	}
}

// decodeRecords turns fetched WAL records back into events.
func decodeRecords(recs []Record) (historygraph.EventList, error) {
	events := make(historygraph.EventList, 0, len(recs))
	for _, rec := range recs {
		ev, err := server.EventFromJSON(rec.Event)
		if err != nil {
			return nil, fmt.Errorf("replica: migration record %d: %w", rec.Seq, err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// migrateAppend admits one contiguous same-batch run of migrated events:
// admission without the dedup-resume logic (the migration stream is the
// target's only writer, and the slot filter plus page boundaries
// legitimately split batches into partial runs) but with the span
// registration, so a post-cutover coordinator retry of an
// already-migrated batch dedups against the migrated records.
func (n *Node) migrateAppend(events historygraph.EventList, batch string) error {
	if len(events) == 0 {
		return nil
	}
	vStart := time.Now()
	n.admitMu.Lock()
	if err := validateOrder(historygraph.Time(n.admittedAt.Load()), events); err != nil {
		n.admitMu.Unlock()
		return err
	}
	first, last, err := n.log.StartAppend(events, batch)
	if err != nil {
		n.admitMu.Unlock()
		return fmt.Errorf("replica: migration WAL append: %w", err)
	}
	n.recordBatch(batch, len(events), last)
	n.raiseAdmitted(last, events[len(events)-1].At)
	req := &applyReq{events: events, first: first, last: last, start: vStart, done: make(chan applyDone, 1)}
	n.inflight.Add(1)
	n.obsStage("validate", vStart)
	select {
	case n.queue <- req:
	case <-n.quit:
		n.inflight.Add(-1)
		n.admitMu.Unlock()
		return errNodeClosed
	}
	n.admitMu.Unlock()
	return n.await(req).err
}
