package replica

// Streaming ingest: POST /append?stream=1 carries many batches on one
// long-lived connection as binary frames (internal/wire append-stream
// encoding). Each frame is admitted through the same pipeline stage as a
// standalone POST /append — same dedup table, same order validation, same
// WAL write — so a frame and a request with the same batch ID are
// interchangeable across retries. The handler keeps a window of admitted-
// but-unsettled frames: inside the window it reads the next frame while
// earlier ones are still syncing and applying (this is where the
// throughput comes from), at the window edge it settles the oldest before
// reading more. Because settling blocks the read loop, the client's TCP
// send buffer eventually fills and its writes stall — the transport
// itself is the backpressure; no ack frames flow upstream (HTTP/1.1 gives
// the client no response bytes to read while it is still writing).

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"historygraph/internal/server"
	"historygraph/internal/wire"
)

func (n *Node) handleAppendStream(w http.ResponseWriter, r *http.Request) {
	dec, err := wire.NewAppendStreamDecoder(r.Body)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, err)
		return
	}
	var (
		agg     server.AppendResult
		pending []admitted // admitted frames not yet settled, oldest first
		acked   uint64     // highest seq the follower-ack wait must cover
		frames  int        // frames admitted so far
	)
	// settleOne folds the oldest pending admission into the aggregate.
	settleOne := func() error {
		ad := pending[0]
		pending = pending[1:]
		res, err := n.settle(ad)
		if err != nil {
			return err
		}
		agg.Appended += res.Appended
		if res.LastTime > agg.LastTime {
			agg.LastTime = res.LastTime
		}
		if res.Seq > agg.Seq {
			agg.Seq = res.Seq
		}
		agg.Invalidated += res.Invalidated
		agg.Deduped = agg.Deduped || res.Deduped
		return nil
	}
	settleAll := func() error {
		for len(pending) > 0 {
			if err := settleOne(); err != nil {
				return err
			}
		}
		return nil
	}
	// fail aborts the stream. Frames admitted before the failure are
	// durably logged and will apply regardless of the error answer — the
	// message tells the client exactly how far the stream got, so a
	// resuming client replays from that frame (batch IDs make the overlap
	// safe).
	fail := func(status int, cause error) {
		settleErr := settleAll()
		msg := fmt.Errorf("append stream failed at frame %d: %w (earlier frames were admitted and are durable)", frames, cause)
		if settleErr != nil {
			msg = fmt.Errorf("%w; settle error: %v", msg, settleErr)
		}
		server.WriteError(w, status, msg)
	}
	for {
		frame, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(http.StatusBadRequest, err)
			return
		}
		events, err := server.DecodeEvents(frame.Events)
		if err != nil {
			fail(http.StatusBadRequest, err)
			return
		}
		ad, status, err := n.admit(events, frame.Batch)
		if err != nil {
			fail(status, err)
			return
		}
		if ad.acked > acked {
			acked = ad.acked
		}
		pending = append(pending, ad)
		frames++
		// Window edge: settle the oldest before reading another frame.
		// Blocking here (instead of reading on) is the per-stream
		// backpressure that bounds this connection's claim on the shared
		// pipeline queue.
		if len(pending) >= n.streamWindow {
			if err := settleOne(); err != nil {
				fail(http.StatusInternalServerError, err)
				return
			}
		}
	}
	if err := settleAll(); err != nil {
		fail(http.StatusInternalServerError, err)
		return
	}
	// One follower-ack wait covers the whole stream: acks are seq-watermark
	// based, so confirming the highest admitted sequence confirms every
	// frame.
	if acked > 0 && n.syncFollowers > 0 {
		ackStart := time.Now()
		if !n.waitForAcks(acked, n.syncFollowers) {
			server.WriteError(w, http.StatusServiceUnavailable, fmt.Errorf(
				"replica: %d follower(s) did not confirm seq %d within %v (all %d stream frames are logged and will replicate; the stream was NOT acked)",
				n.syncFollowers, acked, n.ackTimeout, frames))
			return
		}
		n.obsStage("ack", ackStart)
	}
	server.WriteWire(w, r, http.StatusOK, agg)
}
