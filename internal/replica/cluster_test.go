package replica_test

// The acceptance oracle for the replicated deployment: a 2-replica x
// 2-partition cluster must answer /snapshot byte-identically to an
// unsharded server over the same event log, before and after (a) killing
// and restarting a worker (WAL replay + catch-up) and (b) killing a
// primary mid-append-stream (follower promotion, no acked event lost).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/datagen"
	"historygraph/internal/replica"
	"historygraph/internal/server"
	"historygraph/internal/shard"
)

// cnode is one cluster member on a fixed address, so it can be killed and
// restarted without the coordinator noticing a URL change.
type cnode struct {
	gm      *historygraph.GraphManager
	svc     *server.Server
	log     *replica.Log
	node    *replica.Node
	httpSrv *http.Server
	addr    string
	url     string
	walPath string
	stopped bool
}

// launch starts (or restarts) a node over walPath. addr "" picks a fresh
// port; passing a previous node's addr rebinds it, simulating a process
// restart on the same host.
func launch(t testing.TB, walPath, addr string, cfg replica.Config) *cnode {
	t.Helper()
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 128, CleanerInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	svc := server.New(gm, server.Config{CacheSize: 16})
	log, err := replica.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	node, err := replica.NewNode(svc, log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cn := &cnode{
		gm: gm, svc: svc, log: log, node: node,
		httpSrv: &http.Server{Handler: node.Handler()},
		addr:    ln.Addr().String(),
		url:     "http://" + ln.Addr().String(),
		walPath: walPath,
	}
	go cn.httpSrv.Serve(ln)
	t.Cleanup(cn.stop)
	return cn
}

func (cn *cnode) stop() {
	if cn.stopped {
		return
	}
	cn.stopped = true
	cn.httpSrv.Close()
	cn.node.Close()
	cn.svc.Close()
	cn.log.Close()
	cn.gm.Close()
}

// waitCaughtUp polls until the member at url has applied through seq.
func waitCaughtUp(t testing.TB, url string, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st, err := replica.Status(context.Background(), http.DefaultClient, url)
		if err == nil && st.AppliedSeq >= seq {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never caught up to seq %d", url, seq)
}

func TestReplicatedClusterOracle(t *testing.T) {
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 200, Edges: 600, Years: 4, AttrsPerNode: 2, Seed: 42,
	})
	const parts = 2
	dir := t.TempDir()
	walPath := func(p, r int) string { return filepath.Join(dir, fmt.Sprintf("p%d-r%d.wal", p, r)) }

	// Two replica sets: primaries ack only after their follower has
	// durably logged the batch, so killing a primary can never lose an
	// acked event. Followers run SyncFollowers=0 — once promoted they are
	// alone in the set until the dead member is re-seeded.
	primaries := make([]*cnode, parts)
	followers := make([]*cnode, parts)
	sets := make([][]string, parts)
	for p := 0; p < parts; p++ {
		primaries[p] = launch(t, walPath(p, 0), "", replica.Config{
			Role: replica.RolePrimary, SyncFollowers: 1, AckTimeout: 10 * time.Second,
		})
		followers[p] = launch(t, walPath(p, 1), "", replica.Config{
			Role: replica.RoleFollower, PrimaryURL: primaries[p].url,
			PollWait: 250 * time.Millisecond,
		})
		sets[p] = []string{primaries[p].url, followers[p].url}
	}
	co, err := shard.NewReplicated(sets, shard.Config{PartitionTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	client := server.NewClient(front.URL)

	// Ingest through the coordinator in batches; every ack means the
	// batch is on two disks per partition.
	const batches = 8
	for i := 0; i < batches; i++ {
		lo, hi := i*len(events)/batches, (i+1)*len(events)/batches
		if _, err := client.Append(events[lo:hi]); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	// The unsharded oracle over the same trace.
	ogm, err := historygraph.BuildFrom(events, historygraph.Options{LeafEventlistSize: 128, CleanerInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ogm.Close()
	osvc := server.New(ogm, server.Config{CacheSize: 16})
	defer osvc.Close()
	ohs := httptest.NewServer(osvc.Handler())
	defer ohs.Close()
	last := ogm.LastTime()

	compare := func(stage string, tps ...historygraph.Time) {
		t.Helper()
		for _, tp := range tps {
			for _, query := range []string{
				fmt.Sprintf("/snapshot?t=%d&full=1", tp),
				fmt.Sprintf("/snapshot?t=%d&attrs=%%2Bnode:all%%2Bedge:all&full=1", tp),
				fmt.Sprintf("/snapshot?t=%d", tp),
			} {
				want := rawGET(t, ohs.URL+query)
				got := rawGET(t, front.URL+query)
				if string(got) != string(want) {
					t.Fatalf("[%s] %s diverges from unsharded oracle:\n got: %.400s\nwant: %.400s",
						stage, query, got, want)
				}
			}
		}
	}
	compare("initial", last/4, last/2, last)

	// (a) Kill a worker and restart it over its WAL: replay rebuilds the
	// graph, catch-up resumes from the stored sequence, and the cluster
	// answers exactly as before. The coordinator keeps the same member
	// URL throughout.
	primarySeq := primaries[0].log.LastSeq()
	dead := followers[0]
	deadAddr, deadWAL := dead.addr, dead.walPath
	dead.stop()
	followers[0] = launch(t, deadWAL, deadAddr, replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primaries[0].url,
		PollWait: 250 * time.Millisecond,
	})
	waitCaughtUp(t, followers[0].url, primarySeq)
	compare("after worker restart", last/3, last*2/3, last)

	// (b) Kill a primary, then keep appending: the coordinator promotes
	// the (fully caught-up) follower and the append lands without a
	// partial hole. Nothing acked before the kill may be missing after.
	primaries[1].stop()
	var batchB historygraph.EventList
	newT := last + 5
	for i := 0; i < 32; i++ {
		batchB = append(batchB, historygraph.Event{
			Type: historygraph.AddNode, At: newT, Node: historygraph.NodeID(3000000 + i),
		})
	}
	res, err := client.Append(batchB)
	if err != nil {
		t.Fatalf("append across primary failure: %v", err)
	}
	if len(res.Partial) != 0 {
		t.Fatalf("append across primary failure reported partial %+v; failover should have closed the hole", res.Partial)
	}
	if res.Appended != len(batchB) {
		t.Fatalf("appended %d of %d", res.Appended, len(batchB))
	}
	if co.Failovers() == 0 {
		t.Fatal("no failover recorded despite a dead primary")
	}
	st, err := replica.Status(context.Background(), http.DefaultClient, followers[1].url)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" {
		t.Fatalf("surviving member of partition 1 reports role %q, want primary", st.Role)
	}

	// Oracle ingests the same batch; all of history — including every
	// event acked to the dead primary — must still merge identically.
	// Comparison timepoints are fresh on both deployments: a previously
	// queried one can differ in the cached flag alone, because the
	// coordinator's merged-response cache legitimately keeps pre-append
	// timepoints that a worker's current-dependent view cannot.
	if _, err := server.NewClient(ohs.URL).Append(batchB); err != nil {
		t.Fatal(err)
	}
	compare("after failover", last/2+1, last+1, newT)
}

// TestFailoverRetryDeduped: the worst-case duplicate scenario — an append
// commits on the primary and replicates to the follower, but the response
// is lost, so the coordinator sees an error, fails over, and retries the
// whole batch against the promoted follower. The batch ID must make that
// retry idempotent: acked once, logged once, applied once.
func TestFailoverRetryDeduped(t *testing.T) {
	dir := t.TempDir()
	// SyncFollowers=1: the primary acks only after the follower has
	// durably mirrored the batch, so by the time the proxy discards the
	// response the events are guaranteed to be on both nodes.
	primary := launch(t, filepath.Join(dir, "p.wal"), "", replica.Config{
		Role: replica.RolePrimary, SyncFollowers: 1, AckTimeout: 10 * time.Second,
	})
	follower := launch(t, filepath.Join(dir, "f.wal"), "", replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.url, PollWait: 100 * time.Millisecond,
	})

	// The proxy fronts the primary for the coordinator: it forwards
	// appends (they commit and replicate) but answers 502 — a response
	// lost after the WAL sync. Everything else (health probes, status)
	// fails too, so the coordinator treats the primary as dark and
	// promotes the follower.
	var swallowed atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/append" {
			req, err := http.NewRequest(http.MethodPost, primary.url+r.URL.RequestURI(), r.Body)
			if err == nil {
				req.Header = r.Header
				if resp, err := http.DefaultClient.Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					swallowed.Add(1)
				}
			}
		}
		http.Error(w, "proxy: connection reset", http.StatusBadGateway)
	}))
	defer proxy.Close()

	co, err := shard.NewReplicated([][]string{{proxy.URL, follower.url}}, shard.Config{
		PartitionTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	front := httptest.NewServer(co.Handler())
	defer front.Close()

	events := testEvents(8, 1)
	res, err := server.NewClient(front.URL).Append(events)
	if err != nil {
		t.Fatalf("append across lost response: %v", err)
	}
	if swallowed.Load() == 0 {
		t.Fatal("proxy never forwarded the first attempt; the scenario did not happen")
	}
	if co.Failovers() == 0 {
		t.Fatal("no failover despite the dark primary")
	}
	if res.Appended != len(events) {
		t.Fatalf("appended %d, want %d", res.Appended, len(events))
	}

	// Exactly one copy: the follower's WAL holds the batch once, and the
	// graph holds each node once.
	if got, want := follower.log.LastSeq(), uint64(len(events)); got != want {
		t.Fatalf("follower WAL holds %d records, want %d (batch logged twice?)", got, want)
	}
	_, lastT := events.Span()
	snap, err := server.NewClient(follower.url).Snapshot(lastT, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != 8 {
		t.Fatalf("follower graph holds %d nodes, want 8", snap.NumNodes)
	}
}

// TestFailoverRetryDedupedConcurrent is the lost-response drill under
// concurrent writers: many batches are in flight across the pipeline when
// the primary goes dark, the coordinator fails over once, and every
// writer's retry lands on the promoted follower under its original batch
// ID. The oracle is exact: each event applied exactly once — mirrored
// batches dedup, unmirrored ones apply fresh, none are lost or doubled.
func TestFailoverRetryDedupedConcurrent(t *testing.T) {
	dir := t.TempDir()
	primary := launch(t, filepath.Join(dir, "p.wal"), "", replica.Config{
		Role: replica.RolePrimary, SyncFollowers: 1, AckTimeout: 2 * time.Second,
	})
	follower := launch(t, filepath.Join(dir, "f.wal"), "", replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.url, PollWait: 50 * time.Millisecond,
	})

	var swallowed atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/append" {
			req, err := http.NewRequest(http.MethodPost, primary.url+r.URL.RequestURI(), r.Body)
			if err == nil {
				req.Header = r.Header
				if resp, err := http.DefaultClient.Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					swallowed.Add(1)
				}
			}
		}
		http.Error(w, "proxy: connection reset", http.StatusBadGateway)
	}))
	defer proxy.Close()

	co, err := shard.NewReplicated([][]string{{proxy.URL, follower.url}}, shard.Config{
		PartitionTimeout: 8 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	front := httptest.NewServer(co.Handler())
	defer front.Close()

	// Every writer's batch shares one timestamp, so arrival order across
	// writers can never trip the nondecreasing-time check — the only
	// ordering in play is the pipeline's own.
	const writers, perBatch = 8, 4
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			client := server.NewClient(front.URL)
			var events historygraph.EventList
			for i := 0; i < perBatch; i++ {
				events = append(events, historygraph.Event{
					Type: historygraph.AddNode, At: 1,
					Node: historygraph.NodeID(wr*100 + i + 1),
				})
			}
			_, errs[wr] = client.Append(events)
		}(wr)
	}
	wg.Wait()
	for wr, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", wr, err)
		}
	}
	if swallowed.Load() == 0 {
		t.Fatal("proxy never forwarded an attempt; the lost-response scenario did not happen")
	}
	if co.Failovers() == 0 {
		t.Fatal("no failover despite the dark primary")
	}

	// Exactly one copy of everything on the survivor.
	if got, want := follower.log.LastSeq(), uint64(writers*perBatch); got != want {
		t.Fatalf("follower WAL holds %d records, want %d (a batch was lost or logged twice)", got, want)
	}
	snap, err := server.NewClient(follower.url).Snapshot(1, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != writers*perBatch {
		t.Fatalf("follower graph holds %d nodes, want %d", snap.NumNodes, writers*perBatch)
	}
}

// TestClientErrorDoesNotFailOver: a 422 from the primary (out-of-order
// batch — the node deliberately said no) must surface to the client
// without deposing the primary; failover is for nodes that stop
// answering, not for requests they reject.
func TestClientErrorDoesNotFailOver(t *testing.T) {
	dir := t.TempDir()
	primary := launch(t, filepath.Join(dir, "p.wal"), "", replica.Config{Role: replica.RolePrimary})
	follower := launch(t, filepath.Join(dir, "f.wal"), "", replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.url, PollWait: 100 * time.Millisecond,
	})
	co, err := shard.NewReplicated([][]string{{primary.url, follower.url}}, shard.Config{
		PartitionTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	client := server.NewClient(front.URL)

	if _, err := client.Append(testEvents(4, 100)); err != nil {
		t.Fatal(err)
	}
	_, err = client.Append(testEvents(2, 1))
	if err == nil {
		t.Fatal("out-of-order batch should be rejected")
	}
	// The rejection surfaces as the client error it is, not as a gateway
	// fault a caller would blindly retry.
	var he *server.HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusUnprocessableEntity {
		t.Fatalf("coordinator answered %v, want HTTP 422", err)
	}
	if got := co.Failovers(); got != 0 {
		t.Fatalf("client rejection triggered %d failover(s)", got)
	}
	if got := co.Primary(0); got != primary.url {
		t.Fatalf("partition 0 primary is %s after a client error, want %s", got, primary.url)
	}
	// The primary stays in rotation: the next good append lands first try.
	if _, err := client.Append(testEvents(2, 200)); err != nil {
		t.Fatal(err)
	}
}

// TestHealthLoopPromotesDarkPrimary: with the background health checker
// on, a dark primary is replaced without waiting for an append to trip
// over it.
func TestHealthLoopPromotesDarkPrimary(t *testing.T) {
	dir := t.TempDir()
	primary := launch(t, filepath.Join(dir, "p.wal"), "", replica.Config{Role: replica.RolePrimary})
	follower := launch(t, filepath.Join(dir, "f.wal"), "", replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.url, PollWait: 100 * time.Millisecond,
	})
	co, err := shard.NewReplicated([][]string{{primary.url, follower.url}}, shard.Config{
		PartitionTimeout: 2 * time.Second,
		HealthInterval:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	client := server.NewClient(httptest.NewServer(co.Handler()).URL)
	res, err := client.Append(testEvents(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, follower.url, res.Seq)

	primary.stop()
	deadline := time.Now().Add(10 * time.Second)
	for co.Failovers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("health loop never promoted the follower")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := co.Primary(0); got != follower.url {
		t.Fatalf("partition 0 primary is %s, want promoted follower %s", got, follower.url)
	}
	// Appends flow again, no failover needed at append time.
	if _, err := client.Append(testEvents(4, 100)); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorStreamReplayDeduped: replaying a client-tagged append
// stream through the coordinator (a retry after a lost response) is
// absorbed by the per-partition batch IDs derived from the frame tags —
// the partition WALs do not grow and the aggregated result says Deduped.
func TestCoordinatorStreamReplayDeduped(t *testing.T) {
	dir := t.TempDir()
	const parts = 2
	primaries := make([]*cnode, parts)
	sets := make([][]string, parts)
	for p := 0; p < parts; p++ {
		primaries[p] = launch(t, filepath.Join(dir, fmt.Sprintf("p%d.wal", p)), "", replica.Config{Role: replica.RolePrimary})
		sets[p] = []string{primaries[p].url}
	}
	co, err := shard.NewReplicated(sets, shard.Config{PartitionTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	client := server.NewClient(front.URL)

	const frames, perFrame = 4, 10
	stream := func() *server.AppendResult {
		t.Helper()
		st, err := client.AppendStream()
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < frames; f++ {
			events := make(historygraph.EventList, perFrame)
			for i := range events {
				events[i] = historygraph.Event{
					Type: historygraph.AddNode, At: historygraph.Time(f + 1),
					Node: historygraph.NodeID(f*perFrame + i + 1),
				}
			}
			if err := st.SendBatch(events, fmt.Sprintf("resume-%d", f)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := st.Close()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res1 := stream()
	if res1.Appended != frames*perFrame || res1.Deduped || len(res1.Partial) != 0 {
		t.Fatalf("fresh stream: %+v", res1)
	}
	seqs := make([]uint64, parts)
	for p := range primaries {
		seqs[p] = primaries[p].log.LastSeq()
	}

	res2 := stream()
	if !res2.Deduped {
		t.Fatalf("replayed stream not reported deduped: %+v", res2)
	}
	if len(res2.Partial) != 0 {
		t.Fatalf("replayed stream reported partials: %+v", res2.Partial)
	}
	for p := range primaries {
		if got := primaries[p].log.LastSeq(); got != seqs[p] {
			t.Fatalf("partition %d WAL grew on replay: seq %d -> %d", p, seqs[p], got)
		}
	}
	snap, err := client.Snapshot(historygraph.Time(frames), "", false)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != frames*perFrame {
		t.Fatalf("cluster holds %d nodes, want %d", snap.NumNodes, frames*perFrame)
	}
}
