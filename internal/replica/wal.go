// Package replica makes a snapshot-serving deployment survive the
// failures a heavy-traffic cluster actually sees. Three mechanisms,
// stacked:
//
//   - Durable write-ahead log: every event batch is appended to a
//     sequenced, CRC-checked on-disk log (kvstore.SeqLog over the
//     FileStore append-only format) and synced before the append is
//     acked, so a process restart replays the log and loses nothing that
//     was ever acknowledged. A torn tail from a crash mid-write is
//     detected by the CRC on reopen and dropped.
//
//   - Primary/follower replication: a partition becomes a replica set —
//     one primary that accepts appends plus N followers that tail the
//     primary's WAL over GET /replicate?from=<seq> (long-poll) and apply
//     events in order, each into its own WAL first. Sequence numbers make
//     catch-up trivial: a follower that was down resumes from its last
//     applied sequence. With SyncFollowers >= 1 the primary delays the
//     append ack until that many followers have durably logged the batch,
//     so promoting the most-caught-up follower after a primary failure
//     loses no acked event.
//
//   - Role switching: POST /role promotes a follower to primary (the
//     shard coordinator does this when a primary goes dark) or points a
//     follower at a new primary.
//
// A Node wraps an ordinary internal/server.Server: reads pass straight
// through (coalescing and the hot-snapshot cache keep working), appends
// gain the WAL hook, and three control endpoints are added. The shard
// coordinator (internal/shard) stacks replica sets into a sharded cluster
// with failover.
package replica

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"historygraph"
	"historygraph/internal/kvstore"
	"historygraph/internal/server"
)

// Record is one WAL entry: a single event under its sequence number.
// Appending a batch of k events produces k consecutive records followed by
// one sync, so durability is paid once per batch. Batch, when set, is the
// append's idempotency ID: every record of the batch carries it, it
// survives in the on-disk payload, and it replicates with the record — so
// both a restarted node and a promoted follower can recognize a retried
// batch they already hold (Node's dedup table).
type Record struct {
	Seq   uint64           `json:"seq"`
	Event server.EventJSON `json:"event"`
	Batch string           `json:"batch,omitempty"`
}

// walPayload is a record's on-disk body: the event's wire form with the
// optional batch ID flattened into the same JSON object.
type walPayload struct {
	server.EventJSON
	Batch string `json:"batch,omitempty"`
}

// Log is the durable write-ahead event log: historygraph events encoded
// onto a kvstore.SeqLog. It is safe for concurrent use.
type Log struct {
	sl *kvstore.SeqLog

	mu     sync.Mutex
	notify chan struct{} // closed and replaced on every append (tail wake-up)
}

// OpenLog opens or creates the WAL at path, recovering the sequence bound
// (and dropping any torn tail) via the underlying store's CRC scan.
func OpenLog(path string) (*Log, error) {
	sl, err := kvstore.OpenSeqLog(path, kvstore.FileOptions{})
	if err != nil {
		return nil, err
	}
	return &Log{sl: sl, notify: make(chan struct{})}, nil
}

// Append logs a batch of events as consecutive records and syncs once.
// When it returns, every event in the batch is durable; first and last
// bound the assigned sequence numbers (first > last means the batch was
// empty).
func (l *Log) Append(events historygraph.EventList) (first, last uint64, err error) {
	return l.AppendBatch(events, "")
}

// AppendBatch is Append tagging every record with the batch's idempotency
// ID (empty for untagged appends). The whole batch is encoded before the
// first record is written: a marshal failure must reject the batch while
// the log is still clean, not strand a prefix of never-applied records
// that followers would replicate.
func (l *Log) AppendBatch(events historygraph.EventList, batch string) (first, last uint64, err error) {
	payloads := make([][]byte, len(events))
	for i, ev := range events {
		payloads[i], err = json.Marshal(walPayload{EventJSON: server.EventToJSON(ev), Batch: batch})
		if err != nil {
			return 0, 0, err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	first = l.sl.Last() + 1
	if len(payloads) == 0 {
		return first, first - 1, nil
	}
	for _, payload := range payloads {
		if last, err = l.sl.Append(payload); err != nil {
			return 0, 0, err
		}
	}
	if err := l.sl.Sync(); err != nil {
		return 0, 0, err
	}
	l.wakeLocked()
	return first, last, nil
}

// AppendRecords mirrors records fetched from a primary into this log and
// syncs once — the follower's durable-before-apply step. Records at or
// below the current sequence bound are skipped (an overlapping re-fetch is
// idempotent); a gap beyond it is an error, since the logs would diverge.
func (l *Log) AppendRecords(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	appended := false
	for _, rec := range recs {
		if rec.Seq <= l.sl.Last() {
			continue
		}
		payload, err := json.Marshal(walPayload{EventJSON: rec.Event, Batch: rec.Batch})
		if err != nil {
			return err
		}
		if _, err := l.sl.AppendAt(rec.Seq, payload); err != nil {
			return err
		}
		appended = true
	}
	if !appended {
		return nil
	}
	if err := l.sl.Sync(); err != nil {
		return err
	}
	l.wakeLocked()
	return nil
}

// wakeLocked wakes every Wait-er; the caller holds l.mu.
func (l *Log) wakeLocked() {
	close(l.notify)
	l.notify = make(chan struct{})
}

// LastSeq returns the highest logged sequence number (0 when empty).
func (l *Log) LastSeq() uint64 { return l.sl.Last() }

// Read returns up to max records starting at sequence from (inclusive).
// An empty result means from is past the end of the log.
func (l *Log) Read(from uint64, max int) ([]Record, error) {
	if from == 0 {
		from = 1
	}
	last := l.sl.Last()
	var out []Record
	for seq := from; seq <= last && len(out) < max; seq++ {
		payload, err := l.sl.Get(seq)
		if err != nil {
			return nil, fmt.Errorf("replica: WAL read seq %d: %w", seq, err)
		}
		var p walPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return nil, fmt.Errorf("replica: corrupt WAL record %d: %w", seq, err)
		}
		out = append(out, Record{Seq: seq, Event: p.EventJSON, Batch: p.Batch})
	}
	return out, nil
}

// Wait blocks until the log grows past seq or the timeout elapses; it
// reports whether records past seq exist. GET /replicate long-polls
// through it so followers tail with one round-trip per batch.
func (l *Log) Wait(seq uint64, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		l.mu.Lock()
		ch := l.notify
		l.mu.Unlock()
		if l.sl.Last() > seq {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return l.sl.Last() > seq
		}
	}
}

// SizeOnDisk returns the WAL's file footprint in bytes.
func (l *Log) SizeOnDisk() int64 { return l.sl.SizeOnDisk() }

// Close releases the underlying file.
func (l *Log) Close() error { return l.sl.Close() }
