// Package replica makes a snapshot-serving deployment survive the
// failures a heavy-traffic cluster actually sees. Three mechanisms,
// stacked:
//
//   - Durable write-ahead log: every event batch is appended to a
//     sequenced, CRC-checked on-disk log (kvstore.SeqLog over the
//     FileStore append-only format) and synced before the append is
//     acked, so a process restart replays the log and loses nothing that
//     was ever acknowledged. A torn tail from a crash mid-write is
//     detected by the CRC on reopen and dropped. Syncs are group-committed:
//     a single flusher goroutine runs one fsync covering every append in
//     flight, so concurrent appenders share the durability tax instead of
//     each paying their own.
//
//   - Primary/follower replication: a partition becomes a replica set —
//     one primary that accepts appends plus N followers that tail the
//     primary's WAL over GET /replicate?from=<seq> (long-poll) and apply
//     events in order, each into its own WAL first. Sequence numbers make
//     catch-up trivial: a follower that was down resumes from its last
//     applied sequence. With SyncFollowers >= 1 the primary delays the
//     append ack until that many followers have durably logged the batch,
//     so promoting the most-caught-up follower after a primary failure
//     loses no acked event.
//
//   - Role switching: POST /role promotes a follower to primary (the
//     shard coordinator does this when a primary goes dark) or points a
//     follower at a new primary.
//
// A Node wraps an ordinary internal/server.Server: reads pass straight
// through (coalescing and the hot-snapshot cache keep working), appends
// gain the WAL hook, and three control endpoints are added. The shard
// coordinator (internal/shard) stacks replica sets into a sharded cluster
// with failover.
package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/kvstore"
	"historygraph/internal/metrics"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// Record is one WAL entry: a single event under its sequence number.
// Appending a batch of k events produces k consecutive records covered by
// one group-committed sync, so durability is paid at most once per batch
// — less under concurrency. Batch, when set, is the append's idempotency
// ID: every record of the batch carries it, it survives in the on-disk
// payload, and it replicates with the record — so both a restarted node
// and a promoted follower can recognize a retried batch they already hold
// (Node's dedup table).
type Record struct {
	Seq   uint64           `json:"seq"`
	Event server.EventJSON `json:"event"`
	Batch string           `json:"batch,omitempty"`
}

// walPayload is the legacy JSON on-disk record body: the event's wire
// form with the optional batch ID flattened into the same object. New
// records are written in the wire package's binary event encoding (about
// a third the bytes and none of the per-field JSON costs); payloads
// starting with '{' decode through this struct so WAL directories written
// before the binary format replay unchanged.
type walPayload struct {
	server.EventJSON
	Batch string `json:"batch,omitempty"`
}

// walBinaryMarker is the first byte of a binary record payload. JSON
// payloads start with '{', so one byte disambiguates.
const walBinaryMarker = 0x00

// encodePayload renders a record body in the binary format.
func encodePayload(ev server.EventJSON, batch string) []byte {
	e := wire.NewEncoder()
	e.Byte(walBinaryMarker)
	e.String(batch)
	wire.EncodeEventTo(e, ev)
	return e.Bytes()
}

// decodePayload reads either payload format.
func decodePayload(payload []byte) (server.EventJSON, string, error) {
	if len(payload) == 0 {
		return server.EventJSON{}, "", fmt.Errorf("replica: empty WAL payload")
	}
	if payload[0] == '{' {
		var p walPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return server.EventJSON{}, "", err
		}
		return p.EventJSON, p.Batch, nil
	}
	d := wire.NewDecoder(payload)
	if d.Byte() != walBinaryMarker {
		return server.EventJSON{}, "", fmt.Errorf("replica: unknown WAL payload format (leading byte 0x%02x)", payload[0])
	}
	batch := d.String()
	ev := wire.DecodeEventFrom(d)
	return ev, batch, d.Err()
}

// errLogClosed is returned to appenders caught by Close.
var errLogClosed = errors.New("replica: WAL closed")

// Log is the durable write-ahead event log: historygraph events encoded
// onto a kvstore.SeqLog. It is safe for concurrent use. Durability is
// group-committed: appenders enqueue their records and then wait for the
// single flusher goroutine to run a sync covering them, so N concurrent
// appends cost one fsync, not N.
type Log struct {
	sl *kvstore.SeqLog

	mu     sync.Mutex
	notify chan struct{} // closed and replaced on every durable append (tail wake-up)

	flushMu   sync.Mutex
	flushCond *sync.Cond
	want      uint64 // highest written sequence awaiting durability
	synced    uint64 // highest sequence covered by a completed sync
	syncErr   error  // sticky: a failed sync leaves stranded buffered records
	closed    bool
	flushDone chan struct{}

	// metrics is swapped in atomically by SetMetrics so the flusher
	// goroutine — already running since OpenLog — reads it without locks.
	metrics atomic.Pointer[logMetrics]
}

// logMetrics are the WAL's registry collectors.
type logMetrics struct {
	appendDur *metrics.Histogram // durable append wall time (group sync included)
	batchRecs *metrics.Histogram // records covered per group commit
	records   *metrics.Counter   // records durably appended
}

// SetMetrics registers the WAL's collectors on reg and starts feeding
// them: append latency (dg_wal_append_duration_seconds), fsync latency
// (dg_wal_fsync_duration_seconds, via the kvstore sync observer),
// group-commit batch sizes (dg_wal_commit_batch_records), and the record
// counter (dg_wal_records_total). Registration is idempotent per
// registry; call it once after OpenLog, before serving.
func (l *Log) SetMetrics(reg *metrics.Registry) {
	fsyncDur := reg.Histogram("dg_wal_fsync_duration_seconds", "WAL group-commit sync wall time (buffer flush plus fsync).", nil)
	l.sl.SetSyncObserver(func(d time.Duration) { fsyncDur.Observe(d.Seconds()) })
	l.metrics.Store(&logMetrics{
		appendDur: reg.Histogram("dg_wal_append_duration_seconds", "Durable WAL append wall time, covering group sync.", nil),
		batchRecs: reg.Histogram("dg_wal_commit_batch_records", "Records covered by one WAL group commit.", metrics.SizeBuckets),
		records:   reg.Counter("dg_wal_records_total", "Records durably appended to the WAL."),
	})
}

// OpenLog opens or creates the WAL at path, recovering the sequence bound
// (and dropping any torn tail) via the underlying store's CRC scan.
func OpenLog(path string) (*Log, error) {
	sl, err := kvstore.OpenSeqLog(path, kvstore.FileOptions{})
	if err != nil {
		return nil, err
	}
	l := &Log{
		sl:        sl,
		notify:    make(chan struct{}),
		flushDone: make(chan struct{}),
	}
	l.flushCond = sync.NewCond(&l.flushMu)
	l.want, l.synced = sl.Last(), sl.Last() // everything recovered is durable
	go l.flusher()
	return l, nil
}

// flusher is the single group-commit goroutine: whenever records are
// written past the synced watermark it runs one Sync covering all of
// them, then wakes every appender the sync covered. It exits on Close or
// on the first sync failure (after which the log is permanently failed —
// buffered records of unknown durability must not be acked).
func (l *Log) flusher() {
	defer close(l.flushDone)
	for {
		l.flushMu.Lock()
		for !l.closed && l.want <= l.synced && l.syncErr == nil {
			l.flushCond.Wait()
		}
		if l.closed || l.syncErr != nil {
			l.flushMu.Unlock()
			return
		}
		// Everything at or below want was fully written before the waiters
		// arrived, so one Sync covers the whole group; records written
		// while the Sync runs are picked up by the next round.
		target := l.want
		covered := target - l.synced
		l.flushMu.Unlock()
		err := l.sl.Sync()
		if m := l.metrics.Load(); m != nil && err == nil {
			m.batchRecs.Observe(float64(covered))
			m.records.Add(int64(covered))
		}
		l.flushMu.Lock()
		if err != nil {
			l.syncErr = err
		} else if target > l.synced {
			l.synced = target
		}
		l.flushCond.Broadcast()
		l.flushMu.Unlock()
		if err == nil {
			// Wake /replicate long-pollers here, once per group commit,
			// so a pipelined appender that has not yet reached its own
			// WaitDurable never delays follower tailing.
			l.wake()
		}
	}
}

// WaitDurable blocks until a completed sync covers seq (joining whatever
// group commit is in flight), the log fails, or it is closed. It is the
// second half of a StartAppend: the append pipeline writes records in
// admission order and pays the durability wait later, off the admission
// lock, so many in-flight batches share one group commit.
func (l *Log) WaitDurable(seq uint64) error { return l.waitDurable(seq) }

// waitDurable blocks until a completed sync covers seq (joining whatever
// group commit is in flight), the log fails, or it is closed.
func (l *Log) waitDurable(seq uint64) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	if seq > l.want {
		l.want = seq
		l.flushCond.Broadcast() // wake the flusher
	}
	for l.synced < seq && l.syncErr == nil && !l.closed {
		l.flushCond.Wait()
	}
	if l.synced >= seq {
		return nil
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	return errLogClosed
}

// DurableSeq returns the highest sequence number a completed sync covers
// — the log's logical end: everything at or below it survives a crash.
func (l *Log) DurableSeq() uint64 {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return l.synced
}

// Append logs a batch of events as consecutive records and waits for the
// covering group sync. When it returns, every event in the batch is
// durable; first and last bound the assigned sequence numbers (first >
// last means the batch was empty).
func (l *Log) Append(events historygraph.EventList) (first, last uint64, err error) {
	return l.AppendBatch(events, "")
}

// AppendBatch is Append tagging every record with the batch's idempotency
// ID (empty for untagged appends): a StartAppend followed by the durable
// wait.
func (l *Log) AppendBatch(events historygraph.EventList, batch string) (first, last uint64, err error) {
	start := time.Now()
	if first, last, err = l.StartAppend(events, batch); err != nil {
		return 0, 0, err
	}
	if last < first {
		return first, last, nil // empty batch: nothing to sync
	}
	if err := l.waitDurable(last); err != nil {
		return 0, 0, err
	}
	if m := l.metrics.Load(); m != nil {
		m.appendDur.Observe(time.Since(start).Seconds())
	}
	return first, last, nil
}

// StartAppend writes a batch's records under the write lock and returns
// their sequence bounds WITHOUT waiting for the covering group sync
// (first > last means the batch was empty). The records are not durable —
// and not visible to LastSeq, Read, or followers — until a sync covers
// them; call WaitDurable(last) before acking anything. One encoder is
// reused across the batch (the store copies each payload into its file
// buffer before Append returns), Reset between records so every payload
// stays independently decodable — the encode itself cannot fail, so a bad
// batch never strands a prefix of records in the log.
func (l *Log) StartAppend(events historygraph.EventList, batch string) (first, last uint64, err error) {
	enc := wire.NewEncoder()
	l.mu.Lock()
	first = l.sl.Last() + 1
	if len(events) == 0 {
		l.mu.Unlock()
		return first, first - 1, nil
	}
	for _, ev := range events {
		enc.Reset()
		enc.Byte(walBinaryMarker)
		enc.String(batch)
		wire.EncodeEventTo(enc, server.EventToJSON(ev))
		if last, err = l.sl.Append(enc.Bytes()); err != nil {
			l.mu.Unlock()
			return 0, 0, err
		}
	}
	l.mu.Unlock()
	// Offer the batch to the flusher immediately rather than when the
	// caller reaches WaitDurable: in the pipelined path the applier waits
	// batch by batch, and if `want` trailed it, each group commit would
	// cover exactly one batch — serial fsyncs again. Raising it here lets
	// one sync cover every batch admitted while the previous sync ran.
	l.flushMu.Lock()
	if last > l.want {
		l.want = last
		l.flushCond.Broadcast()
	}
	l.flushMu.Unlock()
	return first, last, nil
}

// ObserveAppend feeds the append-duration histogram for a pipelined
// append: start is when StartAppend wrote the records, and the caller's
// WaitDurable has just returned — the same span AppendBatch observes for
// the one-shot path.
func (l *Log) ObserveAppend(start time.Time) {
	if m := l.metrics.Load(); m != nil {
		m.appendDur.Observe(time.Since(start).Seconds())
	}
}

// AppendRecords mirrors records fetched from a primary into this log and
// joins the group sync — the follower's durable-before-apply step.
// Records at or below the current sequence bound are skipped (an
// overlapping re-fetch is idempotent); a gap beyond it is an error, since
// the logs would diverge.
func (l *Log) AppendRecords(recs []Record) error {
	start := time.Now()
	l.mu.Lock()
	var last uint64
	appended := false
	for _, rec := range recs {
		if rec.Seq <= l.sl.Last() {
			continue
		}
		var err error
		if last, err = l.sl.AppendAt(rec.Seq, encodePayload(rec.Event, rec.Batch)); err != nil {
			l.mu.Unlock()
			return err
		}
		appended = true
	}
	l.mu.Unlock()
	if !appended {
		return nil
	}
	if err := l.waitDurable(last); err != nil {
		return err
	}
	if m := l.metrics.Load(); m != nil {
		m.appendDur.Observe(time.Since(start).Seconds())
	}
	return nil
}

// wake rouses every Wait-er after records became durable. The flusher
// calls it once per completed group commit.
func (l *Log) wake() {
	l.mu.Lock()
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

// LastSeq returns the highest durably logged sequence number (0 when
// empty). Records an in-flight append has written but whose group sync
// has not completed are excluded — they do not exist yet as far as
// replication and status reporting are concerned.
func (l *Log) LastSeq() uint64 { return l.DurableSeq() }

// Read returns up to max records starting at sequence from (inclusive),
// bounded by the durable watermark: a record is never served to a
// follower before the sync that guarantees the primary itself will still
// have it after a crash (otherwise a follower could hold acked state the
// restarted primary lost, and the logs would diverge).
func (l *Log) Read(from uint64, max int) ([]Record, error) {
	if from == 0 {
		from = 1
	}
	last := l.DurableSeq()
	var out []Record
	for seq := from; seq <= last && len(out) < max; seq++ {
		payload, err := l.sl.Get(seq)
		if err != nil {
			return nil, fmt.Errorf("replica: WAL read seq %d: %w", seq, err)
		}
		ev, batch, err := decodePayload(payload)
		if err != nil {
			return nil, fmt.Errorf("replica: corrupt WAL record %d: %w", seq, err)
		}
		out = append(out, Record{Seq: seq, Event: ev, Batch: batch})
	}
	return out, nil
}

// Wait blocks until the durable log grows past seq or the timeout
// elapses; it reports whether durable records past seq exist. GET
// /replicate long-polls through it so followers tail with one round-trip
// per batch.
func (l *Log) Wait(seq uint64, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		l.mu.Lock()
		ch := l.notify
		l.mu.Unlock()
		if l.DurableSeq() > seq {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return l.DurableSeq() > seq
		}
	}
}

// SizeOnDisk returns the WAL's file footprint in bytes.
func (l *Log) SizeOnDisk() int64 { return l.sl.SizeOnDisk() }

// Reset discards every record and rewinds the sequence to 0 — the
// truncate half of the automated truncate-and-resync path a diverged
// follower takes before re-mirroring the primary's history. The caller
// must have quiesced the node first (no appends in flight): a pending
// group commit is refused rather than raced.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	if l.closed {
		return errLogClosed
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.want != l.synced {
		return fmt.Errorf("replica: WAL reset with %d records awaiting sync", l.want-l.synced)
	}
	if err := l.sl.Reset(); err != nil {
		return err
	}
	l.want, l.synced = 0, 0
	return nil
}

// Close stops the flusher (failing any appender still waiting on a sync)
// and releases the underlying file.
func (l *Log) Close() error {
	l.flushMu.Lock()
	alreadyClosed := l.closed
	l.closed = true
	l.flushCond.Broadcast()
	l.flushMu.Unlock()
	if !alreadyClosed {
		<-l.flushDone
	}
	return l.sl.Close()
}
