package replica_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/replica"
	"historygraph/internal/server"
)

// testNode bundles one replica-set member's moving parts so tests can kill
// and restart it.
type testNode struct {
	gm      *historygraph.GraphManager
	svc     *server.Server
	log     *replica.Log
	node    *replica.Node
	hs      *httptest.Server
	stopped bool
}

func (tn *testNode) stop() {
	if tn.stopped {
		return
	}
	tn.stopped = true
	tn.hs.Close()
	tn.node.Close()
	tn.svc.Close()
	tn.log.Close()
	tn.gm.Close()
}

// startNode opens (or reopens) a node over the WAL at walPath. The caller
// stops it, either explicitly (to simulate a crash-restart cycle) or via
// the test cleanup.
func startNode(t testing.TB, walPath string, cfg replica.Config) *testNode {
	t.Helper()
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 128, CleanerInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	svc := server.New(gm, server.Config{CacheSize: 16})
	log, err := replica.OpenLog(walPath)
	if err != nil {
		gm.Close()
		t.Fatal(err)
	}
	node, err := replica.NewNode(svc, log, cfg)
	if err != nil {
		log.Close()
		gm.Close()
		t.Fatal(err)
	}
	tn := &testNode{gm: gm, svc: svc, log: log, node: node, hs: httptest.NewServer(node.Handler())}
	t.Cleanup(tn.stop)
	return tn
}

func testEvents(n int, startT historygraph.Time) historygraph.EventList {
	var events historygraph.EventList
	for i := 0; i < n; i++ {
		at := startT + historygraph.Time(i)
		events = append(events,
			historygraph.Event{Type: historygraph.AddNode, At: at, Node: historygraph.NodeID(i + 1)},
		)
		if i > 0 {
			events = append(events, historygraph.Event{
				Type: historygraph.AddEdge, At: at,
				Edge: historygraph.EdgeID(i), Node: historygraph.NodeID(i), Node2: historygraph.NodeID(i + 1),
			})
		}
	}
	return events
}

func waitApplied(t testing.TB, baseURL string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := replica.Status(context.Background(), http.DefaultClient, baseURL)
		if err == nil && st.AppliedSeq >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower %s never applied seq %d", baseURL, want)
}

// TestWALRoundTrip: events encoded into the log come back from Read in
// order and decode to the events that went in.
func TestWALRoundTrip(t *testing.T) {
	log, err := replica.OpenLog(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	events := testEvents(50, 1)
	first, last, err := log.Append(events)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != uint64(len(events)) {
		t.Fatalf("append assigned [%d,%d], want [1,%d]", first, last, len(events))
	}
	recs, err := log.Read(1, len(events)+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(events) {
		t.Fatalf("read %d records, want %d", len(recs), len(events))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
		ev, err := server.EventFromJSON(rec.Event)
		if err != nil {
			t.Fatal(err)
		}
		if ev != events[i] {
			t.Fatalf("event %d read back as %+v, want %+v", i, ev, events[i])
		}
	}
}

// TestNodeRestartReplay: a primary that dies and restarts over its WAL
// answers /snapshot byte-identically to before — the single-node
// durability path dgserve -wal-dir enables.
func TestNodeRestartReplay(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	tn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	client := server.NewClient(tn.hs.URL)

	events := testEvents(64, 1)
	res, err := client.Append(events)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq == 0 {
		t.Fatal("append through a WAL-backed node reported no sequence number")
	}
	_, last := events.Span()
	query := fmt.Sprintf("/snapshot?t=%d&full=1", last)
	before := rawGET(t, tn.hs.URL+query)

	tn.stop() // crash

	tn2 := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	after := rawGET(t, tn2.hs.URL+query)
	if string(after) != string(before) {
		t.Fatalf("restarted node diverges:\n got: %.300s\nwant: %.300s", after, before)
	}
	// And it keeps accepting appends at the recovered sequence.
	res2, err := server.NewClient(tn2.hs.URL).Append(testEvents(4, last+10))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Seq <= res.Seq {
		t.Fatalf("post-restart append seq %d, want > %d", res2.Seq, res.Seq)
	}
}

// TestWALTornTailReplay drives kvstore.FileStore's torn-tail crash
// recovery through the WAL replay path: a record half-written at the
// moment of the crash is dropped on reopen, every synced record replays.
func TestWALTornTailReplay(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	log, err := replica.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	events := testEvents(32, 1)
	_, last, err := log.Append(events) // synced
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: garbage where the next record's bytes
	// were being written when the process died.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x07, 0x42, 0x00, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	st, err := replica.Status(context.Background(), http.DefaultClient, tn.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != last || st.AppliedSeq != last {
		t.Fatalf("recovered last=%d applied=%d, want both %d", st.LastSeq, st.AppliedSeq, last)
	}
	// The replayed graph holds every synced event.
	_, lastT := events.Span()
	snap, err := server.NewClient(tn.hs.URL).Snapshot(lastT, "", false)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := historygraph.BuildFrom(events, historygraph.Options{LeafEventlistSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	want, err := direct.GetHistSnapshot(lastT, "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != len(want.Nodes) || snap.NumEdges != len(want.Edges) {
		t.Fatalf("replayed %d/%d, want %d/%d", snap.NumNodes, snap.NumEdges, len(want.Nodes), len(want.Edges))
	}
	// Appends continue over the torn region.
	if _, err := server.NewClient(tn.hs.URL).Append(testEvents(4, lastT+5)); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerTailAndCatchUp: a follower tails the primary's WAL live,
// serves identical reads, and — after being down across further appends —
// catches up from its last applied sequence on restart.
func TestFollowerTailAndCatchUp(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{Role: replica.RolePrimary})
	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 200 * time.Millisecond,
	})

	client := server.NewClient(primary.hs.URL)
	events := testEvents(64, 1)
	res, err := client.Append(events)
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, follower.hs.URL, res.Seq)

	_, lastT := events.Span()
	query := fmt.Sprintf("/snapshot?t=%d&full=1", lastT)
	if got, want := rawGET(t, follower.hs.URL+query), rawGET(t, primary.hs.URL+query); string(got) != string(want) {
		t.Fatalf("follower snapshot diverges:\n got: %.300s\nwant: %.300s", got, want)
	}

	// Follower down; primary keeps appending.
	follower.stop()
	more := testEvents(16, lastT+10)
	res2, err := client.Append(more)
	if err != nil {
		t.Fatal(err)
	}

	// Restart over the same WAL: catch-up resumes from the stored
	// sequence, not from scratch.
	follower2 := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 200 * time.Millisecond,
	})
	waitApplied(t, follower2.hs.URL, res2.Seq)
	_, lastT2 := more.Span()
	query2 := fmt.Sprintf("/snapshot?t=%d&full=1", lastT2)
	if got, want := rawGET(t, follower2.hs.URL+query2), rawGET(t, primary.hs.URL+query2); string(got) != string(want) {
		t.Fatalf("caught-up follower diverges:\n got: %.300s\nwant: %.300s", got, want)
	}
}

// TestConcurrentAppendsMatchWAL: concurrent appends must reach the
// in-memory graph in WAL sequence order, so the graph a restart replays
// is the graph that was being served (a batch must never be durably
// logged yet rejected by the apply step because a later-logged batch
// applied first).
func TestConcurrentAppendsMatchWAL(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	tn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	client := server.NewClient(tn.hs.URL)

	const writers, perWriter = 8, 16
	var wg sync.WaitGroup
	var failures atomic.Int64
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ev := historygraph.Event{
					Type: historygraph.AddNode, At: 7, // one shared timestamp keeps every interleaving chronological
					Node: historygraph.NodeID(wtr*perWriter + i + 1),
				}
				if _, err := client.Append(historygraph.EventList{ev}); err != nil {
					failures.Add(1)
				}
			}
		}(wtr)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d concurrent appends failed", failures.Load())
	}
	before := rawGET(t, tn.hs.URL+"/snapshot?t=7&full=1")

	tn.stop()
	tn2 := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	st, err := replica.Status(context.Background(), http.DefaultClient, tn2.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(writers * perWriter); st.LastSeq != want || st.AppliedSeq != want {
		t.Fatalf("recovered last=%d applied=%d, want both %d", st.LastSeq, st.AppliedSeq, want)
	}
	after := rawGET(t, tn2.hs.URL+"/snapshot?t=7&full=1")
	if string(after) != string(before) {
		t.Fatalf("replayed graph diverges from the served one:\n got: %.300s\nwant: %.300s", after, before)
	}
}

// TestFollowerRejectsAppend: external appends at a follower are
// misdirected, naming the primary.
func TestFollowerRejectsAppend(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{Role: replica.RolePrimary})
	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL,
	})
	_, err := server.NewClient(follower.hs.URL).Append(testEvents(2, 1))
	if err == nil {
		t.Fatal("append at a follower should be rejected")
	}
}

// TestSyncFollowerAck: with SyncFollowers=1 an append is acked only once
// a follower has durably fetched it — no follower, no ack.
func TestSyncFollowerAck(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{
		Role: replica.RolePrimary, SyncFollowers: 1, AckTimeout: 300 * time.Millisecond,
	})
	client := server.NewClient(primary.hs.URL)
	if _, err := client.Append(testEvents(4, 1)); err == nil {
		t.Fatal("append with no follower attached should time out unacked")
	}

	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 100 * time.Millisecond,
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		// The earlier batch is already in the WAL; the follower pulls it,
		// after which appends ack within the follower's poll cadence.
		if _, err := client.Append(testEvents(4, 100)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("append never acked despite an attached follower")
		}
	}
	st, err := replica.Status(context.Background(), http.DefaultClient, follower.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.AppliedSeq == 0 {
		t.Fatal("follower applied nothing")
	}
}

// TestPromote: a promoted follower accepts appends and a demoted-to-
// follower node re-points its tail.
func TestPromote(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{Role: replica.RolePrimary})
	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 100 * time.Millisecond,
	})
	client := server.NewClient(primary.hs.URL)
	res, err := client.Append(testEvents(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, follower.hs.URL, res.Seq)

	primary.stop() // primary goes dark
	if err := replica.SetRole(context.Background(), http.DefaultClient, follower.hs.URL, replica.RolePrimary, ""); err != nil {
		t.Fatal(err)
	}
	st, err := replica.Status(context.Background(), http.DefaultClient, follower.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" {
		t.Fatalf("promoted node reports role %q", st.Role)
	}
	res2, err := server.NewClient(follower.hs.URL).Append(testEvents(8, 40))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Seq <= res.Seq {
		t.Fatalf("promoted primary assigned seq %d, want > %d", res2.Seq, res.Seq)
	}
}

// TestOutOfOrderAppendKeepsWALClean: a batch the graph rejects (events
// older than the index clock — an ordinary client error) must be refused
// before it reaches the WAL. Without the validate-first guard the
// rejected batch was durably logged anyway, and every restart re-hit the
// rejection during replay: the node crash-looped until the WAL was
// repaired by hand.
func TestOutOfOrderAppendKeepsWALClean(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	tn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	client := server.NewClient(tn.hs.URL)

	events := testEvents(8, 100)
	res, err := client.Append(events)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Append(testEvents(2, 1)); err == nil {
		t.Fatal("out-of-order batch should be rejected")
	}
	if got := tn.log.LastSeq(); got != res.Seq {
		t.Fatalf("rejected batch reached the WAL: last seq %d, want %d", got, res.Seq)
	}
	_, lastT := events.Span()
	query := fmt.Sprintf("/snapshot?t=%d&full=1", lastT)
	before := rawGET(t, tn.hs.URL+query)

	tn.stop() // restart must not crash-loop on a poison record
	tn2 := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	st, err := replica.Status(context.Background(), http.DefaultClient, tn2.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != res.Seq || st.AppliedSeq != res.Seq || st.WALSkipped != 0 {
		t.Fatalf("recovered last=%d applied=%d skipped=%d, want %d/%d/0",
			st.LastSeq, st.AppliedSeq, st.WALSkipped, res.Seq, res.Seq)
	}
	if after := rawGET(t, tn2.hs.URL+query); string(after) != string(before) {
		t.Fatalf("restarted node diverges:\n got: %.300s\nwant: %.300s", after, before)
	}
}

// poisonedWAL writes a log holding good records bracketing one the graph
// rejects (an event older than the index clock) — the shape a WAL written
// before the validate-before-log guard could be left in.
func poisonedWAL(t testing.TB, walPath string) (lastSeq uint64, lastT historygraph.Time) {
	t.Helper()
	log, err := replica.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	batches := []historygraph.EventList{
		{
			{Type: historygraph.AddNode, At: 10, Node: 1},
			{Type: historygraph.AddNode, At: 11, Node: 2},
		},
		{{Type: historygraph.AddNode, At: 3, Node: 99}}, // poison: predates the clock
		{{Type: historygraph.AddNode, At: 20, Node: 3}},
	}
	for _, b := range batches {
		var err error
		if _, lastSeq, err = log.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return lastSeq, 20
}

// TestPoisonWALReplayTolerated: replay over a WAL holding records the
// graph rejects must skip and count them — exactly what the live append
// path did (a 422, never applied) — instead of refusing to start.
func TestPoisonWALReplayTolerated(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	lastSeq, lastT := poisonedWAL(t, walPath)

	tn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	st, err := replica.Status(context.Background(), http.DefaultClient, tn.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != lastSeq || st.AppliedSeq != lastSeq {
		t.Fatalf("recovered last=%d applied=%d, want both %d", st.LastSeq, st.AppliedSeq, lastSeq)
	}
	if st.WALSkipped != 1 {
		t.Fatalf("wal_skipped = %d, want 1", st.WALSkipped)
	}
	snap, err := server.NewClient(tn.hs.URL).Snapshot(lastT, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != 3 {
		t.Fatalf("replayed %d nodes, want 3 (poison skipped, good events kept)", snap.NumNodes)
	}
	for _, n := range snap.Nodes {
		if n.ID == 99 {
			t.Fatal("poison event reached the graph")
		}
	}
	// The node keeps accepting appends past the poison.
	if _, err := server.NewClient(tn.hs.URL).Append(testEvents(2, lastT+5)); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerSkipsPoisonRecords: poison records replicate to the
// follower (the logs must stay identical) but are skipped there the same
// way — the follower keeps applying later records instead of wedging
// behind the rejection with appliedSeq stuck.
func TestFollowerSkipsPoisonRecords(t *testing.T) {
	dir := t.TempDir()
	lastSeq, lastT := poisonedWAL(t, filepath.Join(dir, "p.wal"))

	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{Role: replica.RolePrimary})
	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 100 * time.Millisecond,
	})
	waitApplied(t, follower.hs.URL, lastSeq)

	// Live appends past the poison still replicate and apply.
	res, err := server.NewClient(primary.hs.URL).Append(testEvents(4, lastT+10))
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, follower.hs.URL, res.Seq)

	st, err := replica.Status(context.Background(), http.DefaultClient, follower.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != res.Seq || st.AppliedSeq != res.Seq {
		t.Fatalf("follower last=%d applied=%d, want both %d", st.LastSeq, st.AppliedSeq, res.Seq)
	}
	if st.WALSkipped != 1 {
		t.Fatalf("follower wal_skipped = %d, want 1", st.WALSkipped)
	}
	query := fmt.Sprintf("/snapshot?t=%d&full=1", lastT+20)
	if got, want := rawGET(t, follower.hs.URL+query), rawGET(t, primary.hs.URL+query); string(got) != string(want) {
		t.Fatalf("follower snapshot diverges:\n got: %.300s\nwant: %.300s", got, want)
	}
}

// TestAppendBatchDedup: retrying a batch ID the node has already logged
// acks without appending twice — immediately, after a restart (table
// rebuilt from the WAL), and on a promoted follower (table extended by
// mirrored records). This is what makes the coordinator's post-failover
// append retry idempotent.
func TestAppendBatchDedup(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{Role: replica.RolePrimary})
	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 100 * time.Millisecond,
	})
	ctx := context.Background()
	client := server.NewClient(primary.hs.URL)
	events := testEvents(8, 1)
	_, lastT := events.Span()

	res, err := client.AppendBatchCtx(ctx, events, "batch-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped {
		t.Fatal("first append reported deduped")
	}
	// Same ID again: acked, nothing new in the WAL.
	res2, err := client.AppendBatchCtx(ctx, events, "batch-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Deduped || res2.Seq != res.Seq || res2.Appended != res.Appended {
		t.Fatalf("retry answered %+v, want deduped with seq %d appended %d", res2, res.Seq, res.Appended)
	}
	if got := primary.log.LastSeq(); got != res.Seq {
		t.Fatalf("retry appended to the WAL: last seq %d, want %d", got, res.Seq)
	}
	waitApplied(t, follower.hs.URL, res.Seq)

	// The promoted follower recognizes the batch from mirrored records.
	primary.stop()
	if err := replica.SetRole(ctx, http.DefaultClient, follower.hs.URL, replica.RolePrimary, ""); err != nil {
		t.Fatal(err)
	}
	res3, err := server.NewClient(follower.hs.URL).AppendBatchCtx(ctx, events, "batch-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res3.Deduped || res3.Seq != res.Seq {
		t.Fatalf("promoted follower answered %+v, want deduped with seq %d", res3, res.Seq)
	}
	snap, err := server.NewClient(follower.hs.URL).Snapshot(lastT, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != 8 {
		t.Fatalf("follower holds %d nodes, want 8 (no duplicate apply)", snap.NumNodes)
	}

	// And a restarted node rebuilds the table from its own WAL.
	follower.stop()
	restarted := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{Role: replica.RolePrimary})
	res4, err := server.NewClient(restarted.hs.URL).AppendBatchCtx(ctx, events, "batch-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res4.Deduped || res4.Seq != res.Seq {
		t.Fatalf("restarted node answered %+v, want deduped with seq %d", res4, res.Seq)
	}
}

// TestAppendBatchResume: a retried batch of which the node holds only a
// prefix (a mid-batch primary failure cut the replication stream short)
// must resume from the mirrored records — not re-append the prefix, and
// not full-ack while silently dropping the suffix.
func TestAppendBatchResume(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	events := testEvents(8, 1)
	// The dead primary managed to replicate only the first 5 records of
	// the batch before going dark.
	log, err := replica.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := log.AppendBatch(events[:5], "batch-r"); err != nil {
		t.Fatal(err)
	}
	log.Close()

	tn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	ctx := context.Background()
	res, err := server.NewClient(tn.hs.URL).AppendBatchCtx(ctx, events, "batch-r")
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(len(events))
	if !res.Deduped || res.Appended != len(events) || res.Seq != want {
		t.Fatalf("resume answered %+v, want deduped with appended %d seq %d", res, len(events), want)
	}
	if got := tn.log.LastSeq(); got != want {
		t.Fatalf("WAL holds %d records, want %d (prefix re-appended?)", got, want)
	}
	_, lastT := events.Span()
	snap, err := server.NewClient(tn.hs.URL).Snapshot(lastT, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != 8 || snap.NumEdges != 7 {
		t.Fatalf("graph holds %d/%d, want 8/7", snap.NumNodes, snap.NumEdges)
	}
	// A further retry of the now-complete batch is a plain dedup ack.
	res2, err := server.NewClient(tn.hs.URL).AppendBatchCtx(ctx, events, "batch-r")
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Deduped || res2.Appended != len(events) || res2.Seq != want || tn.log.LastSeq() != want {
		t.Fatalf("post-resume retry answered %+v (log at %d), want full dedup at seq %d", res2, tn.log.LastSeq(), want)
	}
}

func rawGET(t testing.TB, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body
}
