package replica_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/replica"
	"historygraph/internal/server"
)

// testNode bundles one replica-set member's moving parts so tests can kill
// and restart it.
type testNode struct {
	gm      *historygraph.GraphManager
	svc     *server.Server
	log     *replica.Log
	node    *replica.Node
	hs      *httptest.Server
	stopped bool
}

func (tn *testNode) stop() {
	if tn.stopped {
		return
	}
	tn.stopped = true
	tn.hs.Close()
	tn.node.Close()
	tn.svc.Close()
	tn.log.Close()
	tn.gm.Close()
}

// startNode opens (or reopens) a node over the WAL at walPath. The caller
// stops it, either explicitly (to simulate a crash-restart cycle) or via
// the test cleanup.
func startNode(t testing.TB, walPath string, cfg replica.Config) *testNode {
	t.Helper()
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 128, CleanerInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	svc := server.New(gm, server.Config{CacheSize: 16})
	log, err := replica.OpenLog(walPath)
	if err != nil {
		gm.Close()
		t.Fatal(err)
	}
	node, err := replica.NewNode(svc, log, cfg)
	if err != nil {
		log.Close()
		gm.Close()
		t.Fatal(err)
	}
	tn := &testNode{gm: gm, svc: svc, log: log, node: node, hs: httptest.NewServer(node.Handler())}
	t.Cleanup(tn.stop)
	return tn
}

func testEvents(n int, startT historygraph.Time) historygraph.EventList {
	var events historygraph.EventList
	for i := 0; i < n; i++ {
		at := startT + historygraph.Time(i)
		events = append(events,
			historygraph.Event{Type: historygraph.AddNode, At: at, Node: historygraph.NodeID(i + 1)},
		)
		if i > 0 {
			events = append(events, historygraph.Event{
				Type: historygraph.AddEdge, At: at,
				Edge: historygraph.EdgeID(i), Node: historygraph.NodeID(i), Node2: historygraph.NodeID(i + 1),
			})
		}
	}
	return events
}

func waitApplied(t testing.TB, baseURL string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := replica.Status(context.Background(), http.DefaultClient, baseURL)
		if err == nil && st.AppliedSeq >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower %s never applied seq %d", baseURL, want)
}

// TestWALRoundTrip: events encoded into the log come back in order, from
// both Read and Replay.
func TestWALRoundTrip(t *testing.T) {
	log, err := replica.OpenLog(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	events := testEvents(50, 1)
	first, last, err := log.Append(events)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != uint64(len(events)) {
		t.Fatalf("append assigned [%d,%d], want [1,%d]", first, last, len(events))
	}
	recs, err := log.Read(1, len(events)+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(events) {
		t.Fatalf("read %d records, want %d", len(recs), len(events))
	}
	var replayed historygraph.EventList
	if err := log.Replay(func(chunk historygraph.EventList) error {
		replayed = append(replayed, chunk...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(events) {
		t.Fatalf("replayed %d events, want %d", len(replayed), len(events))
	}
	for i := range events {
		if replayed[i] != events[i] {
			t.Fatalf("event %d replayed as %+v, want %+v", i, replayed[i], events[i])
		}
	}
}

// TestNodeRestartReplay: a primary that dies and restarts over its WAL
// answers /snapshot byte-identically to before — the single-node
// durability path dgserve -wal-dir enables.
func TestNodeRestartReplay(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	tn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	client := server.NewClient(tn.hs.URL)

	events := testEvents(64, 1)
	res, err := client.Append(events)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq == 0 {
		t.Fatal("append through a WAL-backed node reported no sequence number")
	}
	_, last := events.Span()
	query := fmt.Sprintf("/snapshot?t=%d&full=1", last)
	before := rawGET(t, tn.hs.URL+query)

	tn.stop() // crash

	tn2 := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	after := rawGET(t, tn2.hs.URL+query)
	if string(after) != string(before) {
		t.Fatalf("restarted node diverges:\n got: %.300s\nwant: %.300s", after, before)
	}
	// And it keeps accepting appends at the recovered sequence.
	res2, err := server.NewClient(tn2.hs.URL).Append(testEvents(4, last+10))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Seq <= res.Seq {
		t.Fatalf("post-restart append seq %d, want > %d", res2.Seq, res.Seq)
	}
}

// TestWALTornTailReplay drives kvstore.FileStore's torn-tail crash
// recovery through the WAL replay path: a record half-written at the
// moment of the crash is dropped on reopen, every synced record replays.
func TestWALTornTailReplay(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	log, err := replica.OpenLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	events := testEvents(32, 1)
	_, last, err := log.Append(events) // synced
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-append: garbage where the next record's bytes
	// were being written when the process died.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x07, 0x42, 0x00, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	st, err := replica.Status(context.Background(), http.DefaultClient, tn.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != last || st.AppliedSeq != last {
		t.Fatalf("recovered last=%d applied=%d, want both %d", st.LastSeq, st.AppliedSeq, last)
	}
	// The replayed graph holds every synced event.
	_, lastT := events.Span()
	snap, err := server.NewClient(tn.hs.URL).Snapshot(lastT, "", false)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := historygraph.BuildFrom(events, historygraph.Options{LeafEventlistSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	want, err := direct.GetHistSnapshot(lastT, "")
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != len(want.Nodes) || snap.NumEdges != len(want.Edges) {
		t.Fatalf("replayed %d/%d, want %d/%d", snap.NumNodes, snap.NumEdges, len(want.Nodes), len(want.Edges))
	}
	// Appends continue over the torn region.
	if _, err := server.NewClient(tn.hs.URL).Append(testEvents(4, lastT+5)); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerTailAndCatchUp: a follower tails the primary's WAL live,
// serves identical reads, and — after being down across further appends —
// catches up from its last applied sequence on restart.
func TestFollowerTailAndCatchUp(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{Role: replica.RolePrimary})
	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 200 * time.Millisecond,
	})

	client := server.NewClient(primary.hs.URL)
	events := testEvents(64, 1)
	res, err := client.Append(events)
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, follower.hs.URL, res.Seq)

	_, lastT := events.Span()
	query := fmt.Sprintf("/snapshot?t=%d&full=1", lastT)
	if got, want := rawGET(t, follower.hs.URL+query), rawGET(t, primary.hs.URL+query); string(got) != string(want) {
		t.Fatalf("follower snapshot diverges:\n got: %.300s\nwant: %.300s", got, want)
	}

	// Follower down; primary keeps appending.
	follower.stop()
	more := testEvents(16, lastT+10)
	res2, err := client.Append(more)
	if err != nil {
		t.Fatal(err)
	}

	// Restart over the same WAL: catch-up resumes from the stored
	// sequence, not from scratch.
	follower2 := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 200 * time.Millisecond,
	})
	waitApplied(t, follower2.hs.URL, res2.Seq)
	_, lastT2 := more.Span()
	query2 := fmt.Sprintf("/snapshot?t=%d&full=1", lastT2)
	if got, want := rawGET(t, follower2.hs.URL+query2), rawGET(t, primary.hs.URL+query2); string(got) != string(want) {
		t.Fatalf("caught-up follower diverges:\n got: %.300s\nwant: %.300s", got, want)
	}
}

// TestConcurrentAppendsMatchWAL: concurrent appends must reach the
// in-memory graph in WAL sequence order, so the graph a restart replays
// is the graph that was being served (a batch must never be durably
// logged yet rejected by the apply step because a later-logged batch
// applied first).
func TestConcurrentAppendsMatchWAL(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	tn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	client := server.NewClient(tn.hs.URL)

	const writers, perWriter = 8, 16
	var wg sync.WaitGroup
	var failures atomic.Int64
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ev := historygraph.Event{
					Type: historygraph.AddNode, At: 7, // one shared timestamp keeps every interleaving chronological
					Node: historygraph.NodeID(wtr*perWriter + i + 1),
				}
				if _, err := client.Append(historygraph.EventList{ev}); err != nil {
					failures.Add(1)
				}
			}
		}(wtr)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d concurrent appends failed", failures.Load())
	}
	before := rawGET(t, tn.hs.URL+"/snapshot?t=7&full=1")

	tn.stop()
	tn2 := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	st, err := replica.Status(context.Background(), http.DefaultClient, tn2.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(writers * perWriter); st.LastSeq != want || st.AppliedSeq != want {
		t.Fatalf("recovered last=%d applied=%d, want both %d", st.LastSeq, st.AppliedSeq, want)
	}
	after := rawGET(t, tn2.hs.URL+"/snapshot?t=7&full=1")
	if string(after) != string(before) {
		t.Fatalf("replayed graph diverges from the served one:\n got: %.300s\nwant: %.300s", after, before)
	}
}

// TestFollowerRejectsAppend: external appends at a follower are
// misdirected, naming the primary.
func TestFollowerRejectsAppend(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{Role: replica.RolePrimary})
	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL,
	})
	_, err := server.NewClient(follower.hs.URL).Append(testEvents(2, 1))
	if err == nil {
		t.Fatal("append at a follower should be rejected")
	}
}

// TestSyncFollowerAck: with SyncFollowers=1 an append is acked only once
// a follower has durably fetched it — no follower, no ack.
func TestSyncFollowerAck(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{
		Role: replica.RolePrimary, SyncFollowers: 1, AckTimeout: 300 * time.Millisecond,
	})
	client := server.NewClient(primary.hs.URL)
	if _, err := client.Append(testEvents(4, 1)); err == nil {
		t.Fatal("append with no follower attached should time out unacked")
	}

	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 100 * time.Millisecond,
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		// The earlier batch is already in the WAL; the follower pulls it,
		// after which appends ack within the follower's poll cadence.
		if _, err := client.Append(testEvents(4, 100)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("append never acked despite an attached follower")
		}
	}
	st, err := replica.Status(context.Background(), http.DefaultClient, follower.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.AppliedSeq == 0 {
		t.Fatal("follower applied nothing")
	}
}

// TestPromote: a promoted follower accepts appends and a demoted-to-
// follower node re-points its tail.
func TestPromote(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "p.wal"), replica.Config{Role: replica.RolePrimary})
	follower := startNode(t, filepath.Join(dir, "f.wal"), replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primary.hs.URL, PollWait: 100 * time.Millisecond,
	})
	client := server.NewClient(primary.hs.URL)
	res, err := client.Append(testEvents(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, follower.hs.URL, res.Seq)

	primary.stop() // primary goes dark
	if err := replica.SetRole(context.Background(), http.DefaultClient, follower.hs.URL, replica.RolePrimary, ""); err != nil {
		t.Fatal(err)
	}
	st, err := replica.Status(context.Background(), http.DefaultClient, follower.hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" {
		t.Fatalf("promoted node reports role %q", st.Role)
	}
	res2, err := server.NewClient(follower.hs.URL).Append(testEvents(8, 40))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Seq <= res.Seq {
		t.Fatalf("promoted primary assigned seq %d, want > %d", res2.Seq, res.Seq)
	}
}

func rawGET(t testing.TB, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body
}
