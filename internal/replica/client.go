package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Status fetches a node's GET /replstatus — the coordinator's view into a
// replica-set member's role and catch-up position.
func Status(ctx context.Context, hc *http.Client, baseURL string) (*StatusJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(baseURL, "/")+"/replstatus", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("replica: %s/replstatus: HTTP %d: %s",
			baseURL, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var out StatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Migrate drives a node's POST /admin/migrate — start a slot-migration
// ingest (Sources), freeze the per-source final WAL heads (Finalize), or
// tear the ingest down (Stop) — and returns the resulting status. The
// coordinator's reshard driver is the caller.
func Migrate(ctx context.Context, hc *http.Client, baseURL string, mr MigrateRequest) (*MigrateStatus, error) {
	buf, err := json.Marshal(mr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(baseURL, "/")+"/admin/migrate", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("replica: %s/admin/migrate: HTTP %d: %s",
			baseURL, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var out MigrateStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MigrationStatus fetches a node's GET /admin/migrate.
func MigrationStatus(ctx context.Context, hc *http.Client, baseURL string) (*MigrateStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(baseURL, "/")+"/admin/migrate", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("replica: %s/admin/migrate: HTTP %d: %s",
			baseURL, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var out MigrateStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SetRole posts a node's POST /role: promote to primary (primaryURL
// ignored) or point at a new primary as follower. The coordinator's
// failover path drives promotions through it.
func SetRole(ctx context.Context, hc *http.Client, baseURL string, role Role, primaryURL string) error {
	body := RoleRequest{Role: role.String(), Primary: primaryURL}
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(baseURL, "/")+"/role", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("replica: %s/role: HTTP %d: %s",
			baseURL, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return nil
}
