package replica_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/replica"
	"historygraph/internal/server"
)

// TestAppendStreamIngest: frames sent over one streaming connection land
// exactly like standalone appends — aggregated result, graph content, and
// batch-ID dedup on a replayed stream.
func TestAppendStreamIngest(t *testing.T) {
	tn := startNode(t, filepath.Join(t.TempDir(), "wal.log"), replica.Config{Role: replica.RolePrimary})
	client := server.NewClient(tn.hs.URL)

	const frames, perFrame = 6, 8
	send := func() *server.AppendResult {
		t.Helper()
		stream, err := client.AppendStream()
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < frames; f++ {
			var events historygraph.EventList
			for i := 0; i < perFrame; i++ {
				events = append(events, historygraph.Event{
					Type: historygraph.AddNode, At: historygraph.Time(f + 1),
					Node: historygraph.NodeID(f*perFrame + i + 1),
				})
			}
			if err := stream.SendBatch(events, fmt.Sprintf("ingest-%d", f)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := stream.Close()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := send()
	if res.Appended != frames*perFrame {
		t.Fatalf("stream appended %d, want %d", res.Appended, frames*perFrame)
	}
	if res.LastTime != frames {
		t.Fatalf("stream last_time %d, want %d", res.LastTime, frames)
	}
	if res.Seq != uint64(frames*perFrame) {
		t.Fatalf("stream acked seq %d, want %d", res.Seq, frames*perFrame)
	}
	snap, err := client.Snapshot(historygraph.Time(frames), "", false)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != frames*perFrame {
		t.Fatalf("graph holds %d nodes after stream, want %d", snap.NumNodes, frames*perFrame)
	}

	// The same stream replayed (a client resending after a lost response)
	// must dedup frame by frame: nothing new logged, nothing new applied.
	res2 := send()
	if !res2.Deduped {
		t.Fatal("replayed stream not reported deduped")
	}
	if got := tn.log.LastSeq(); got != uint64(frames*perFrame) {
		t.Fatalf("WAL holds %d records after replayed stream, want %d", got, frames*perFrame)
	}
}

// TestAppendStreamAbortReportsProgress: a stream that turns invalid
// mid-flight answers an error naming the failing frame, and every frame
// admitted before it stays durable and applied.
func TestAppendStreamAbortReportsProgress(t *testing.T) {
	tn := startNode(t, filepath.Join(t.TempDir(), "wal.log"), replica.Config{Role: replica.RolePrimary})
	client := server.NewClient(tn.hs.URL)
	stream, err := client.AppendStream()
	if err != nil {
		t.Fatal(err)
	}
	good := testEvents(4, 10)
	if err := stream.Send(good); err != nil {
		t.Fatal(err)
	}
	// Time travel: the node must reject this frame and abort the stream.
	bad := testEvents(2, 1)
	stream.Send(bad) // the write may succeed; the failure surfaces on Close
	_, err = stream.Close()
	if err == nil {
		t.Fatal("stream with a time-traveling frame closed clean")
	}
	var he *server.HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusUnprocessableEntity {
		t.Fatalf("stream abort answered %v, want HTTP 422", err)
	}
	// Frame 0 landed and stays.
	waitApplied(t, tn.hs.URL, tn.log.LastSeq())
	snap, err := client.Snapshot(20, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != 4 {
		t.Fatalf("graph holds %d nodes after aborted stream, want the 4 admitted before the bad frame", snap.NumNodes)
	}
}

// TestKillMidPipelineReplay is the crash drill for the staged append path:
// a node dies with batches parked at every pipeline stage — applied but
// never acked (the ack wait timed out), and durably logged but never
// applied (the crash hit between the WAL write and the applier) — and a
// restart over the same WAL must replay to exactly the state an unsharded
// server reaches applying the same events once each.
func TestKillMidPipelineReplay(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "drill.wal")
	// SyncFollowers=1 with no follower attached: every append is logged
	// and applied, then fails its ack wait — the applied-but-not-acked
	// stage, held at the moment of the crash.
	tn := startNode(t, walPath, replica.Config{
		Role: replica.RolePrimary, SyncFollowers: 1, AckTimeout: 150 * time.Millisecond,
	})
	client := server.NewClient(tn.hs.URL)

	batchA := testEvents(16, 1)
	_, err := client.Append(batchA)
	if err == nil {
		t.Fatal("append with an absent follower should fail its ack wait")
	}
	var he *server.HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("unacked append answered %v, want HTTP 503", err)
	}
	appliedAtCrash := tn.node.AppliedSeq()
	if appliedAtCrash == 0 {
		t.Fatal("unacked batch was not applied; the drill's applied-not-acked stage is empty")
	}

	// The logged-but-not-applied stage: records written straight into the
	// WAL, exactly what a crash between the group-commit fsync and the
	// applier leaves behind. The running node never sees them.
	_, lastA := batchA.Span()
	batchB := historygraph.EventList{}
	for i := 0; i < 8; i++ {
		batchB = append(batchB, historygraph.Event{
			Type: historygraph.AddNode, At: lastA + 1, Node: historygraph.NodeID(9000 + i),
		})
	}
	if _, _, err := tn.log.AppendBatch(batchB, "drill-loggedonly"); err != nil {
		t.Fatal(err)
	}
	loggedAtCrash := tn.log.LastSeq()
	if loggedAtCrash <= appliedAtCrash {
		t.Fatal("nothing parked in the logged-not-applied stage")
	}

	// Crash: take the listener down first (no orderly drain of anything
	// in flight), then the process state. The WAL file is all that
	// survives.
	tn.stop()

	reborn := startNode(t, walPath, replica.Config{Role: replica.RolePrimary})
	if got := reborn.node.AppliedSeq(); got != loggedAtCrash {
		t.Fatalf("replay applied through seq %d, want every durable record through %d", got, loggedAtCrash)
	}

	// Byte-identical oracle: an unsharded server that applied each batch
	// exactly once.
	all := append(append(historygraph.EventList{}, batchA...), batchB...)
	ogm, err := historygraph.BuildFrom(all, historygraph.Options{LeafEventlistSize: 128, CleanerInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ogm.Close()
	osvc := server.New(ogm, server.Config{CacheSize: 16})
	defer osvc.Close()
	ohs := httptest.NewServer(osvc.Handler())
	defer ohs.Close()
	for _, q := range []string{
		fmt.Sprintf("/snapshot?t=%d&full=1", lastA+1),
		fmt.Sprintf("/snapshot?t=%d&full=1", lastA/2),
	} {
		want := rawGET(t, ohs.URL+q)
		got := rawGET(t, reborn.hs.URL+q)
		if string(got) != string(want) {
			t.Fatalf("replayed state diverges from oracle at %s:\n got: %.300s\nwant: %.300s", q, got, want)
		}
	}

	// Replay must also be idempotent against the retry a client issues for
	// its unacked batch: same batch ID, already in the replayed dedup
	// table, nothing duplicated.
	res, err := server.NewClient(reborn.hs.URL).AppendBatchCtx(context.Background(), batchB, "drill-loggedonly")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deduped {
		t.Fatal("post-restart retry of a logged batch was not deduped")
	}
	if got := reborn.log.LastSeq(); got != loggedAtCrash {
		t.Fatalf("retry after replay grew the WAL to %d records, want %d", got, loggedAtCrash)
	}
}
