// Package replica adds durability and replication to a snapshot query
// service: a write-ahead event log that is synced before any append is
// acknowledged, primary/follower replication of that log, and the role
// machinery a coordinator uses to fail over. Operating procedures —
// failover behavior, the manual WAL re-seed for a deposed primary, the
// -sync-followers trade-offs, and the /replstatus field reference — live
// in docs/OPERATIONS.md.
//
// A Node wraps an internal/server.Server:
//
//   - Primary role: POST /append validates the batch against the graph
//     clock first (a client error can never poison the log), writes every
//     event to the WAL (replica.Log over kvstore.SeqLog's CRC-checked
//     sequenced records), fsyncs, optionally waits until
//     Config.SyncFollowers followers have durably logged the batch, and
//     only then applies and acks. Restart replays the local WAL through
//     the same apply path.
//   - Follower role: rejects external appends and tails its primary's
//     WAL over long-poll GET /replicate?from=<seq>, writing each record
//     to its own WAL (synced) before applying, so its log stays
//     prefix-identical to the primary's and catch-up after downtime
//     resumes from the last stored sequence.
//   - Either role answers GET /replstatus (role, log head, applied
//     sequence, skipped-record count) and POST /role (promote / follow),
//     which internal/shard's failover drives.
//
// Appends carry idempotency batch IDs persisted in every WAL record and
// mirrored to followers, so a retry after failover or a lost response is
// acked without double-applying — including resuming a batch the node
// holds only a prefix of.
//
// Concurrency rules: one node-level mutex orders WAL-write + graph-apply
// (appliedSeq never overstates the graph); the Log group-commits fsyncs
// through a single flusher goroutine, so concurrent appenders share each
// sync; Log.Read and Wait never return records beyond the durable
// watermark. A Node and a Log are each safe for concurrent use.
package replica
