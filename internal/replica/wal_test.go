package replica_test

// Group-commit and payload-format coverage for the WAL: concurrent
// appends must all come back durable and contiguous (and survive a
// reopen), and WAL directories written in the legacy per-record JSON
// format must replay through the binary-era reader unchanged.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"historygraph"
	"historygraph/internal/kvstore"
	"historygraph/internal/replica"
)

// TestWALConcurrentGroupCommit hammers one log from many goroutines: every
// append must return durable, sequences must be contiguous with batches
// unsplit, and a reopen must recover every record. This is the workload
// the single-flusher group commit exists for — correctness here, the
// throughput win in BenchmarkWALAppendConcurrent.
func TestWALConcurrentGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	wal, err := replica.OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		batches = 25
		perB    = 4
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	spans := make(map[uint64]uint64) // first -> last per returned batch
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				events := make(historygraph.EventList, perB)
				for i := range events {
					// Monotonic timestamps are not required by the log
					// itself (the node validates ordering above it).
					events[i] = historygraph.Event{
						Type: historygraph.AddNode, At: historygraph.Time(b + 1),
						Node: historygraph.NodeID(g*1000000 + b*100 + i),
					}
				}
				first, last, err := wal.AppendBatch(events, fmt.Sprintf("g%d-b%d", g, b))
				if err != nil {
					t.Error(err)
					return
				}
				if last-first+1 != perB {
					t.Errorf("batch split: first %d last %d", first, last)
					return
				}
				mu.Lock()
				spans[first] = last
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	total := uint64(writers * batches * perB)
	if got := wal.LastSeq(); got != total {
		t.Fatalf("LastSeq %d, want %d", got, total)
	}
	if got := wal.DurableSeq(); got != total {
		t.Fatalf("DurableSeq %d, want %d (every returned append must be synced)", got, total)
	}
	// Batches are contiguous runs: walking span to span must tile 1..total.
	next := uint64(1)
	for next <= total {
		last, ok := spans[next]
		if !ok {
			t.Fatalf("no batch starts at seq %d", next)
		}
		next = last + 1
	}
	recs, err := wal.Read(1, int(total))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != int(total) {
		t.Fatalf("read %d records, want %d", len(recs), total)
	}
	wal.Close()

	// Crash-restart equivalence: reopen and re-read everything.
	wal2, err := replica.OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if got := wal2.LastSeq(); got != total {
		t.Fatalf("reopened LastSeq %d, want %d", got, total)
	}
	recs2, err := wal2.Read(1, int(total))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if recs[i].Seq != recs2[i].Seq || recs[i].Event != recs2[i].Event || recs[i].Batch != recs2[i].Batch {
			t.Fatalf("record %d changed across reopen: %+v vs %+v", i, recs[i], recs2[i])
		}
	}
}

// TestWALLegacyJSONPayloadReplays writes records in the pre-binary JSON
// payload format straight onto the underlying SeqLog, then opens it as a
// WAL: Read must decode them (events and batch IDs) exactly, and new
// appends must coexist with the legacy prefix.
func TestWALLegacyJSONPayloadReplays(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	sl, err := kvstore.OpenSeqLog(path, kvstore.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	type legacy struct {
		Type  string `json:"type"`
		At    int64  `json:"at"`
		Node  int64  `json:"node,omitempty"`
		Batch string `json:"batch,omitempty"`
	}
	for i := 1; i <= 3; i++ {
		payload, err := json.Marshal(legacy{Type: "NN", At: int64(i), Node: int64(i * 10), Batch: "legacy-1"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sl.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := sl.Sync(); err != nil {
		t.Fatal(err)
	}
	sl.Close()

	wal, err := replica.OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if _, _, err := wal.AppendBatch(historygraph.EventList{
		{Type: historygraph.AddNode, At: 4, Node: 40},
	}, "modern-1"); err != nil {
		t.Fatal(err)
	}
	recs, err := wal.Read(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("read %d records, want 4", len(recs))
	}
	for i, rec := range recs[:3] {
		if rec.Event.Type != "NN" || rec.Event.At != int64(i+1) || rec.Event.Node != int64((i+1)*10) {
			t.Fatalf("legacy record %d decoded wrong: %+v", i, rec)
		}
		if rec.Batch != "legacy-1" {
			t.Fatalf("legacy record %d lost its batch ID: %+v", i, rec)
		}
	}
	if recs[3].Batch != "modern-1" || recs[3].Event.At != 4 {
		t.Fatalf("modern record decoded wrong: %+v", recs[3])
	}
}
