package replica

// The binary replication stream: GET /replicate's response in the wire
// package's binary encoding. A catch-up fetch moves up to FetchMax
// records per round trip, and with JSON each of them paid a full
// per-field encode on the primary and decode on the follower — on the
// catch-up path that dominated the transfer. The binary body reuses the
// exact event encoding WAL payloads are stored in (wire.EncodeEventTo),
// with one encoder per response so attribute keys and event type names
// intern across the whole batch.
//
// Layout after the standard wire frame ('D', version, kindReplicate):
//
//	uvarint last_seq
//	uvarint record count
//	per record: uvarint seq | string batch | event

import (
	"fmt"

	"historygraph/internal/wire"
)

// kindReplicate frames the /replicate binary body. Kinds 0x20+ are the
// replica package's slice of the wire kind space.
const kindReplicate = 0x21

// encodeReplicate renders a /replicate response in the binary format.
func encodeReplicate(recs []Record, lastSeq uint64) []byte {
	e := wire.NewEncoder()
	e.Header(kindReplicate)
	e.Uvarint(lastSeq)
	e.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		e.Uvarint(rec.Seq)
		e.String(rec.Batch)
		wire.EncodeEventTo(e, rec.Event)
	}
	return e.Bytes()
}

// decodeReplicate reads a binary /replicate response.
func decodeReplicate(data []byte) (replicateResponse, error) {
	d := wire.NewDecoder(data)
	kind, err := d.Header()
	if err != nil {
		return replicateResponse{}, err
	}
	if kind != kindReplicate {
		return replicateResponse{}, fmt.Errorf("replica: message kind 0x%02x, want 0x%02x", kind, kindReplicate)
	}
	out := replicateResponse{LastSeq: d.Uvarint()}
	n := d.Len()
	out.Records = make([]Record, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out.Records = append(out.Records, Record{
			Seq:   d.Uvarint(),
			Batch: d.String(),
			Event: wire.DecodeEventFrom(d),
		})
	}
	return out, d.Err()
}
