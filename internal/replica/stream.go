package replica

// The binary replication stream: GET /replicate's response in the wire
// package's binary encoding. A catch-up fetch moves up to FetchMax
// records per round trip, and with JSON each of them paid a full
// per-field encode on the primary and decode on the follower — on the
// catch-up path that dominated the transfer. The binary body reuses the
// exact event encoding WAL payloads are stored in (wire.EncodeEventTo),
// with one encoder per response so attribute keys and event type names
// intern across the whole batch.
//
// Layout after the standard wire frame ('D', version, kindReplicate):
//
//	uvarint last_seq
//	uvarint record count
//	per record: uvarint seq | string batch | event
//
// A slot-filtered fetch (the resharding migration stream, ?slots=...)
// answers kindReplicateSlots instead: the same record list restricted to
// the requested hash slots, plus the cursor/horizon pair the puller needs
// because filtered-out records still advance the scan:
//
//	uvarint last_seq
//	uvarint next_from   (first sequence the next fetch should scan)
//	varint  last_time   (safe time horizon: every event this source will
//	                     ever serve past next_from is at or after it)
//	uvarint record count
//	per record: uvarint seq | string batch | event

import (
	"fmt"

	"historygraph/internal/wire"
)

// Binary /replicate body kinds. Kinds 0x20+ are the replica package's
// slice of the wire kind space.
const (
	kindReplicate      = 0x21
	kindReplicateSlots = 0x22
)

// encodeReplicate renders a /replicate response in the binary format.
func encodeReplicate(recs []Record, lastSeq uint64) []byte {
	e := wire.NewEncoder()
	e.Header(kindReplicate)
	e.Uvarint(lastSeq)
	encodeRecords(e, recs)
	return e.Bytes()
}

// encodeReplicateSlots renders a slot-filtered /replicate response.
func encodeReplicateSlots(recs []Record, lastSeq, nextFrom uint64, lastTime int64) []byte {
	e := wire.NewEncoder()
	e.Header(kindReplicateSlots)
	e.Uvarint(lastSeq)
	e.Uvarint(nextFrom)
	e.Varint(lastTime)
	encodeRecords(e, recs)
	return e.Bytes()
}

func encodeRecords(e *wire.Encoder, recs []Record) {
	e.Uvarint(uint64(len(recs)))
	for _, rec := range recs {
		e.Uvarint(rec.Seq)
		e.String(rec.Batch)
		wire.EncodeEventTo(e, rec.Event)
	}
}

// decodeReplicate reads a binary /replicate response, either kind.
func decodeReplicate(data []byte) (replicateResponse, error) {
	d := wire.NewDecoder(data)
	kind, err := d.Header()
	if err != nil {
		return replicateResponse{}, err
	}
	var out replicateResponse
	switch kind {
	case kindReplicate:
		out.LastSeq = d.Uvarint()
	case kindReplicateSlots:
		out.LastSeq = d.Uvarint()
		out.NextFrom = d.Uvarint()
		out.LastTime = d.Varint()
	default:
		return replicateResponse{}, fmt.Errorf("replica: message kind 0x%02x, want 0x%02x or 0x%02x", kind, kindReplicate, kindReplicateSlots)
	}
	n := d.Len()
	out.Records = make([]Record, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out.Records = append(out.Records, Record{
			Seq:   d.Uvarint(),
			Batch: d.String(),
			Event: wire.DecodeEventFrom(d),
		})
	}
	return out, d.Err()
}
