package replica

import (
	"reflect"
	"testing"

	"historygraph/internal/server"
)

func strp(s string) *string { return &s }

// TestReplicateStreamRoundTrip pins the binary /replicate body: records
// (sequence, batch ID, full event incl. old/new attribute pointers) must
// decode exactly, empty batches included.
func TestReplicateStreamRoundTrip(t *testing.T) {
	for _, recs := range [][]Record{
		nil,
		{
			{Seq: 1, Event: server.EventJSON{Type: "NN", At: 1, Node: 7}},
			{Seq: 2, Event: server.EventJSON{Type: "NE", At: 2, Node: 7, Node2: 9, Edge: 3, Directed: true}, Batch: "b1"},
			{Seq: 3, Event: server.EventJSON{Type: "UNA", At: 3, Node: 7, Attr: "name", Old: strp("x"), New: strp("")}, Batch: "b1"},
		},
	} {
		body := encodeReplicate(recs, 99)
		got, err := decodeReplicate(body)
		if err != nil {
			t.Fatal(err)
		}
		if got.LastSeq != 99 {
			t.Fatalf("last_seq %d, want 99", got.LastSeq)
		}
		want := recs
		if want == nil {
			want = []Record{}
		}
		if !reflect.DeepEqual(got.Records, want) {
			t.Fatalf("records mismatch:\n got: %#v\nwant: %#v", got.Records, want)
		}
	}

	// Corrupt input errors instead of panicking.
	if _, err := decodeReplicate([]byte("{}")); err == nil {
		t.Fatal("JSON body accepted as binary stream")
	}
	body := encodeReplicate([]Record{{Seq: 1, Event: server.EventJSON{Type: "NN", At: 1}}}, 1)
	for cut := 0; cut < len(body); cut++ {
		_, _ = decodeReplicate(body[:cut])
	}
}
