package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistQuantileOracle records a latency-shaped sample set and checks
// every reported quantile against the sorted-sample oracle: a
// log-bucketed histogram with 16 sub-buckets per octave answers within
// ~1/32 relative error (one half bucket width).
func TestHistQuantileOracle(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(42))
	samples := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Lognormal around ~2ms with a heavy tail, like real latencies,
		// truncated to whole nanoseconds (Record's granularity).
		v := math.Trunc(math.Exp(rng.NormFloat64()*1.1 + 14.5))
		samples = append(samples, v)
		h.Record(time.Duration(v))
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(len(samples)))) - 1
		oracle := samples[rank]
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-oracle) / oracle; rel > 1.0/16 {
			t.Errorf("Quantile(%v) = %v, oracle %v: relative error %.3f > 1/16", q, got, oracle, rel)
		}
	}
	if h.Count() != 50000 {
		t.Errorf("Count = %d, want 50000", h.Count())
	}
	if max := float64(h.Max()); max != samples[len(samples)-1] {
		t.Errorf("Max = %v, want %v", max, samples[len(samples)-1])
	}
}

// TestHistBucketRoundTrip: every bucket's midpoint maps back to that
// bucket, and bucket boundaries are monotonic. The final octave (low
// bound 2^63, ~292 years of nanoseconds) overflows int64 midpoints and
// is unreachable by any real duration, so the walk stops before it.
func TestHistBucketRoundTrip(t *testing.T) {
	last := histSub + (62-histSubBits+1)*histSub // first bucket of octave 63
	prev := int64(-1)
	for idx := 0; idx < last; idx++ {
		mid := bucketMid(idx)
		if got := bucketOf(mid); got != idx {
			t.Fatalf("bucketOf(bucketMid(%d)) = %d", idx, got)
		}
		if mid <= prev {
			t.Fatalf("bucketMid not monotonic at %d: %d <= %d", idx, mid, prev)
		}
		prev = mid
	}
}

// TestHistEdgeCases: empty histogram, single sample, quantile clamping
// to the recorded max, negative durations clamped to zero.
func TestHistEdgeCases(t *testing.T) {
	var empty Hist
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}

	var one Hist
	one.Record(3 * time.Millisecond)
	for _, q := range []float64{0.001, 0.5, 0.999} {
		if got := one.Quantile(q); got > 3*time.Millisecond {
			t.Errorf("single-sample Quantile(%v) = %v exceeds the recorded max", q, got)
		}
	}

	var neg Hist
	neg.Record(-5 * time.Second)
	if got := neg.Quantile(0.5); got != 0 {
		t.Errorf("negative sample Quantile = %v, want 0", got)
	}
}

// TestHistConcurrent records from many goroutines; the count and sum
// must be exact (the histogram is read while the run is hot, so the
// atomics must not drop observations).
func TestHistConcurrent(t *testing.T) {
	var h Hist
	const perG, goroutines = 1000, 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(time.Duration(g*perG+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != perG*goroutines {
		t.Fatalf("Count = %d, want %d", h.Count(), perG*goroutines)
	}
	if h.Max() != time.Duration(goroutines*perG-1)*time.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
}
