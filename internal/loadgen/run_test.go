package loadgen

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/datagen"
	"historygraph/internal/server"
)

// newTestTarget boots one unsharded server over httptest with a small
// preloaded coauthorship trace, returning its URL and read domains.
func newTestTarget(t *testing.T) (url string, timeMax, nodeMax int64) {
	t.Helper()
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	svc := server.New(gm, server.Config{})
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 200, Edges: 600, Years: 3, AttrsPerNode: 2, Seed: 11,
	})
	if _, err := svc.ApplyEvents(events); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		gm.Close()
	})
	return ts.URL, int64(gm.LastTime()), 200
}

// TestRunE2E runs a short full-mix scenario against an httptest server:
// every endpoint must record successes, nothing may error, and the
// client accounting must reconcile with the server's own /metrics.
func TestRunE2E(t *testing.T) {
	url, timeMax, nodeMax := newTestTarget(t)
	sc, err := ParseScenario([]byte(`{
		"name": "e2e",
		"seed": 7,
		"clients": 6,
		"duration": "2s",
		"warmup": "200ms",
		"mode": "closed",
		"target_rps": 300,
		"mix": {"snapshot": 4, "neighbors": 3, "batch": 1, "interval": 1, "append": 1, "stream": 1},
		"timepoints": {"distribution": "hotkey"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), sc, Options{
		Target:  url,
		TimeMax: timeMax,
		NodeMax: nodeMax,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("run recorded %d errors: %+v", res.Errors, res.Endpoints)
	}
	for _, name := range sc.Endpoints() {
		ep := res.Endpoints[name]
		if ep == nil || ep.Count == 0 {
			t.Errorf("endpoint %s recorded nothing", name)
			continue
		}
		if ep.P50Ms <= 0 || ep.P99Ms < ep.P50Ms {
			t.Errorf("endpoint %s quantiles look wrong: p50 %v p99 %v", name, ep.P50Ms, ep.P99Ms)
		}
	}
	if res.AchievedRPS <= 0 {
		t.Errorf("achieved rps %v", res.AchievedRPS)
	}
	// Local paced closed loop with spare capacity should track the
	// target; keep the band wide for starved CI runners.
	if res.AchievedRPS < sc.TargetRPS*0.5 || res.AchievedRPS > sc.TargetRPS*1.3 {
		t.Errorf("achieved %v rps of %v targeted", res.AchievedRPS, sc.TargetRPS)
	}
	if res.Server == nil || !res.Server.Scraped {
		t.Fatalf("server check missing: %+v", res.Server)
	}
	if !res.Server.Consistent {
		t.Errorf("server scrape saw %d 2xx vs %d client-measured", res.Server.Requests2xx, res.Server.ClientMeasured)
	}
	if res.Server.P99Ms <= 0 {
		t.Errorf("server-side p99 not extracted: %+v", res.Server)
	}
	if err := res.GateErrors(); err != nil {
		t.Errorf("gate failed: %v", err)
	}
	benchmarks, units := res.BenchRecord()
	if units["Load/e2e/throughput_rps"] != "rps" || benchmarks["Load/e2e/throughput_rps"] <= 0 {
		t.Errorf("bench record projection: %v / %v", benchmarks, units)
	}
}

// TestRunOpenLoop checks the dispatcher path: an open-loop run measures
// from intended start times and reports the achieved rate.
func TestRunOpenLoop(t *testing.T) {
	url, timeMax, nodeMax := newTestTarget(t)
	sc, err := ParseScenario([]byte(`{
		"name": "open",
		"clients": 4,
		"duration": "1s",
		"mode": "open",
		"target_rps": 150,
		"mix": {"snapshot": 1, "neighbors": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), sc, Options{Target: url, TimeMax: timeMax, NodeMax: nodeMax})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("open-loop errors: %d", res.Errors)
	}
	if res.AchievedRPS < sc.TargetRPS*0.5 {
		t.Errorf("open loop achieved %v of %v rps", res.AchievedRPS, sc.TargetRPS)
	}
}

// TestRunValidation: chaos without a launched cluster and missing read
// domains are refused up front, not discovered mid-run.
func TestRunValidation(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"name": "chaotic",
		"clients": 1,
		"duration": "5s",
		"time_max": 100,
		"mix": {"snapshot": 1},
		"chaos": [{"at": "1s", "action": "kill_replica", "partition": 0, "member": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), sc, Options{Target: "http://127.0.0.1:1"})
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("chaos in attach mode accepted: %v", err)
	}

	sc2, err := ParseScenario([]byte(`{
		"name": "domainless",
		"clients": 1,
		"duration": "1s",
		"mix": {"snapshot": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), sc2, Options{Target: "http://127.0.0.1:1"})
	if err == nil || !strings.Contains(err.Error(), "time_max") {
		t.Errorf("missing time_max accepted: %v", err)
	}
}

// TestRunCanceled: interrupting the run context returns promptly with
// the context error instead of a half-built result.
func TestRunCanceled(t *testing.T) {
	url, timeMax, nodeMax := newTestTarget(t)
	sc, err := ParseScenario([]byte(`{
		"name": "cancel",
		"clients": 2,
		"duration": "30s",
		"mix": {"snapshot": 1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = Run(ctx, sc, Options{Target: url, TimeMax: timeMax, NodeMax: nodeMax})
	if err == nil {
		t.Fatal("canceled run returned a result")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancel took %v", time.Since(start))
	}
}
