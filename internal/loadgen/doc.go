// Package loadgen is the closed-loop cluster load harness: a traffic
// generator that drives a running coordinator (or a single server) with
// a scenario-declared mix of /snapshot, /neighbors, /batch, /interval
// and /append requests plus the chunked snapshot stream, and reports
// per-endpoint latency quantiles, achieved-vs-target throughput, and
// error accounting that a CI job can gate on.
//
// The pieces:
//
//   - Scenario (scenario.go): a plain-JSON declaration of the workload —
//     client count, duration, warmup, open- vs closed-loop pacing,
//     target RPS, per-endpoint mix ratios, hot-key vs uniform timepoint
//     distributions, wire selection, and chaos hooks. The module is
//     zero-dependency, so scenarios are JSON, not YAML.
//
//   - Limiter (limiter.go): a token-bucket rate limiter. Closed-loop
//     runs with a target use it to pace self-clocked clients; open-loop
//     runs use a dispatcher that stamps every request with its intended
//     start time, so queueing delay counts against latency instead of
//     being silently absorbed (coordinated omission).
//
//   - Hist (hist.go): an HDR-style log-bucketed latency histogram —
//     lock-free recording, bounded relative error (~3%), p50/p99/p999
//     extraction without retaining samples.
//
//   - Run (run.go): the harness proper. N worker clients replay the mix
//     against the target through warmup and measurement phases, classify
//     every outcome (ok / partial / HTTP error / transport error), keep
//     chaos-window errors out of the gate, and cross-check the client's
//     own counts against the cluster's /metrics scrape.
//
//   - Cluster (cluster.go): an in-process P-partition × R-replica
//     cluster (worker replica sets under a shard coordinator, each
//     worker WAL-backed) that cmd/dgtraffic boots when not attaching to
//     an external deployment. It implements the Chaos interface — kill a
//     replica, slow a partition mid-run — so scenarios can assert the
//     cluster degrades to partials and failover rather than errors.
//
// Results serialize to a JSON artifact in the BENCH_*.json family:
// Result.BenchRecord emits benchmark-style name→value pairs with units
// ("rps" is higher-is-better, "ms" lower-is-better) that cmd/benchdiff
// merges and compares direction-aware across runs.
package loadgen
