package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/datagen"
	"historygraph/internal/replica"
	"historygraph/internal/server"
	"historygraph/internal/shard"
)

// ClusterConfig sizes the in-process cluster cmd/dgtraffic launches
// when not attaching to an external deployment. Zero values take the
// documented defaults.
type ClusterConfig struct {
	// Partitions × Replicas is the cluster shape (default 2×2).
	Partitions int
	Replicas   int
	// SyncFollowers delays each primary's append ack until this many
	// followers durably logged the batch (default 1 when Replicas > 1).
	SyncFollowers int
	// Wire selects the coordinator's scatter-leg codec ("" = json).
	Wire string
	// Dir holds the worker WALs; "" creates a temp dir removed on Close.
	Dir string
	// PreloadAuthors/Edges/Years size the datagen.Coauthorship trace
	// appended through the coordinator before the run (defaults
	// 500/1500/5); Seed drives it. The preload teaches the harness the
	// TimeMax/NodeMax read domains.
	PreloadAuthors int
	PreloadEdges   int
	PreloadYears   int
	Seed           int64
	// HealthInterval is the coordinator's replica health-check period
	// (default 250ms — fast enough that a killed replica is routed
	// around within the chaos grace window).
	HealthInterval time.Duration
}

// clusterWorker is one replica-set member plus its chaos controls.
type clusterWorker struct {
	gm      *historygraph.GraphManager
	svc     *server.Server
	wal     *replica.Log
	node    *replica.Node
	httpSrv *http.Server
	gate    *slowGate
	url     string

	mu    sync.Mutex
	alive bool
}

// slowGate injects a per-partition response delay — the
// "slow_partition" chaos action. It wraps the worker's whole handler so
// scatter legs, replication tails and health checks all feel the delay,
// like a saturated disk or an overloaded peer would.
type slowGate struct {
	inner http.Handler
	delay atomic.Int64 // nanoseconds
}

func (g *slowGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := g.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	g.inner.ServeHTTP(w, r)
}

// Cluster is a harness-launched P×R cluster: WAL-backed worker replica
// sets under a shard coordinator, all in-process on localhost. It
// implements Chaos.
type Cluster struct {
	cfg     ClusterConfig
	co      *shard.Coordinator
	front   *http.Server
	url     string
	workers [][]*clusterWorker // [partition][member]; member 0 = initial primary
	dir     string
	ownDir  bool
	timers  []*time.Timer
	timeMax int64
	nodeMax int64

	mu     sync.Mutex
	closed bool
}

func (cfg *ClusterConfig) normalize() {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 2
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.SyncFollowers == 0 && cfg.Replicas > 1 {
		cfg.SyncFollowers = 1
	}
	if cfg.PreloadAuthors == 0 {
		cfg.PreloadAuthors = 500
	}
	if cfg.PreloadEdges == 0 {
		cfg.PreloadEdges = 3 * cfg.PreloadAuthors
	}
	if cfg.PreloadYears == 0 {
		cfg.PreloadYears = 5
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
}

// LaunchCluster boots the cluster and preloads it. Callers must Close.
func LaunchCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg.normalize()
	c := &Cluster{cfg: cfg, dir: cfg.Dir}
	if c.dir == "" {
		dir, err := os.MkdirTemp("", "dgtraffic")
		if err != nil {
			return nil, err
		}
		c.dir, c.ownDir = dir, true
	}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	sets := make([][]string, cfg.Partitions)
	c.workers = make([][]*clusterWorker, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		for m := 0; m < cfg.Replicas; m++ {
			rcfg := replica.Config{SelfID: fmt.Sprintf("p%d-m%d", p, m)}
			if m == 0 {
				rcfg.Role = replica.RolePrimary
				if cfg.Replicas > 1 {
					rcfg.SyncFollowers = cfg.SyncFollowers
				}
			} else {
				rcfg.Role = replica.RoleFollower
				rcfg.PrimaryURL = c.workers[p][0].url
			}
			w, err := startClusterWorker(filepath.Join(c.dir, fmt.Sprintf("p%d-m%d.wal", p, m)), rcfg)
			if err != nil {
				return fail(err)
			}
			c.workers[p] = append(c.workers[p], w)
			sets[p] = append(sets[p], w.url)
		}
	}

	co, err := shard.NewReplicated(sets, shard.Config{
		PartitionTimeout: 5 * time.Second,
		HealthInterval:   cfg.HealthInterval,
		Wire:             cfg.Wire,
	})
	if err != nil {
		return fail(err)
	}
	c.co = co

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	c.front = &http.Server{Handler: co.Handler()}
	c.url = "http://" + ln.Addr().String()
	go c.front.Serve(ln)

	// Preload through the coordinator so every event lands on its hash
	// partition and is durably logged + replicated, exactly like
	// production ingest.
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: cfg.PreloadAuthors, Edges: cfg.PreloadEdges,
		Years: cfg.PreloadYears, AttrsPerNode: 2, Seed: cfg.Seed,
	})
	res, err := server.NewClient(c.url).Append(events)
	if err != nil {
		return fail(fmt.Errorf("preload: %w", err))
	}
	if len(res.Partial) > 0 {
		return fail(fmt.Errorf("preload landed partially: %+v", res.Partial))
	}
	c.timeMax = res.LastTime
	c.nodeMax = int64(cfg.PreloadAuthors)
	return c, nil
}

func startClusterWorker(walPath string, rcfg replica.Config) (*clusterWorker, error) {
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 512})
	if err != nil {
		return nil, err
	}
	svc := server.New(gm, server.Config{})
	wal, err := replica.OpenLog(walPath)
	if err != nil {
		svc.Close()
		gm.Close()
		return nil, err
	}
	node, err := replica.NewNode(svc, wal, rcfg)
	if err != nil {
		wal.Close()
		svc.Close()
		gm.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		node.Close()
		wal.Close()
		svc.Close()
		gm.Close()
		return nil, err
	}
	gate := &slowGate{inner: node.Handler()}
	w := &clusterWorker{
		gm: gm, svc: svc, wal: wal, node: node,
		gate:    gate,
		httpSrv: &http.Server{Handler: gate},
		url:     "http://" + ln.Addr().String(),
		alive:   true,
	}
	go w.httpSrv.Serve(ln)
	return w, nil
}

func (w *clusterWorker) stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.alive {
		return
	}
	w.alive = false
	w.httpSrv.Close()
	w.node.Close()
	w.svc.Close()
	w.wal.Close()
	w.gm.Close()
}

// URL is the coordinator's base URL.
func (c *Cluster) URL() string { return c.url }

// TimeMax is the last preloaded event time (the read-timepoint domain).
func (c *Cluster) TimeMax() int64 { return c.timeMax }

// NodeMax is the largest preloaded node ID (the /neighbors domain).
func (c *Cluster) NodeMax() int64 { return c.nodeMax }

// Coordinator exposes the underlying coordinator (failover counters,
// member listings) for reporting.
func (c *Cluster) Coordinator() *shard.Coordinator { return c.co }

// set returns launch-order worker set p under the lock (nil when out of
// range). A reshard appends sets, so indices refer to provisioning
// order, not the coordinator's live partition numbering (a merge
// renumbers the survivors).
func (c *Cluster) set(p int) ([]*clusterWorker, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p < 0 || p >= len(c.workers) {
		return nil, len(c.workers)
	}
	return c.workers[p], len(c.workers)
}

// KillReplica implements Chaos: stop partition p's member m for good.
func (c *Cluster) KillReplica(p, m int) error {
	set, n := c.set(p)
	if set == nil || m < 0 || m >= len(set) {
		return fmt.Errorf("no replica p%d m%d in a %dx%d cluster", p, m, n, c.cfg.Replicas)
	}
	set[m].stop()
	return nil
}

// SlowPartition implements Chaos: inject delay before every response
// from partition p's members for dur (0 = until Close).
func (c *Cluster) SlowPartition(p int, delay, dur time.Duration) error {
	set, n := c.set(p)
	if set == nil {
		return fmt.Errorf("no partition %d in a %d-partition cluster", p, n)
	}
	for _, w := range set {
		w.gate.delay.Store(int64(delay))
	}
	if dur > 0 {
		c.mu.Lock()
		if !c.closed {
			c.timers = append(c.timers, time.AfterFunc(dur, func() {
				for _, w := range set {
					w.gate.delay.Store(0)
				}
			}))
		}
		c.mu.Unlock()
	}
	return nil
}

// reshardBound caps one chaos-driven reshard end to end (provisioning,
// bulk copy, cutover). Generous against the scenario clock on purpose:
// a reshard that overruns surfaces as a chaos-desc error, not a hang.
const reshardBound = 2 * time.Minute

// Reshard implements Chaos: provision a fresh replica set sized like the
// launch sets and run one live split or merge through the coordinator —
// exactly what an operator driving POST /admin/reshard does, except the
// target capacity comes from the harness instead of a fleet. The new
// set is owned by the cluster (Close tears it down); after a merge the
// retired sets keep running fenced, like real decommissioning would
// leave them until reclaimed.
func (c *Cluster) Reshard(mode string, merge []int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("cluster closed")
	}
	p := len(c.workers)
	c.mu.Unlock()

	var set []*clusterWorker
	var urls []string
	fail := func(err error) error {
		for _, w := range set {
			w.stop()
		}
		return err
	}
	for m := 0; m < c.cfg.Replicas; m++ {
		rcfg := replica.Config{SelfID: fmt.Sprintf("p%d-m%d", p, m)}
		if m == 0 {
			rcfg.Role = replica.RolePrimary
			if c.cfg.Replicas > 1 {
				rcfg.SyncFollowers = c.cfg.SyncFollowers
			}
		} else {
			rcfg.Role = replica.RoleFollower
			rcfg.PrimaryURL = urls[0]
		}
		w, err := startClusterWorker(filepath.Join(c.dir, fmt.Sprintf("p%d-m%d.wal", p, m)), rcfg)
		if err != nil {
			return fail(err)
		}
		set = append(set, w)
		urls = append(urls, w.url)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fail(fmt.Errorf("cluster closed"))
	}
	c.workers = append(c.workers, set)
	c.mu.Unlock()

	req := shard.ReshardRequest{Target: urls}
	if mode == "merge" {
		req.Merge = merge
	}
	ctx, cancel := context.WithTimeout(context.Background(), reshardBound)
	defer cancel()
	_, _, err := c.co.Reshard(ctx, req)
	return err
}

// Close tears the whole cluster down and removes a temp WAL dir.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	timers := c.timers
	c.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	if c.front != nil {
		c.front.Close()
	}
	if c.co != nil {
		c.co.Close()
	}
	for _, set := range c.workers {
		for _, w := range set {
			w.stop()
		}
	}
	if c.ownDir && c.dir != "" {
		os.RemoveAll(c.dir)
	}
}
