package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"
)

// Duration is a time.Duration that unmarshals from a JSON string like
// "30s" or "250ms" (and marshals back to one), so scenario files read
// like flag values instead of raw nanosecond counts.
type Duration time.Duration

// UnmarshalJSON accepts "30s"-style strings.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("durations are strings like %q: %w", "30s", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// D returns the plain time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// The endpoint names a scenario mix may weight. "stream" is /snapshot
// over the chunked binary stream wire; "analytics" rotates over the
// /analytics scan endpoints (degree, components, evolution) with an
// occasional synchronous PageRank; the rest are the HTTP endpoints they
// are named after.
var endpointNames = []string{"snapshot", "neighbors", "batch", "interval", "append", "stream", "analytics"}

// Chaos actions a scenario may schedule mid-run.
const (
	// ChaosKillReplica stops one replica-set member (Partition, Member;
	// member 0 is the initial primary — killing it exercises failover).
	ChaosKillReplica = "kill_replica"
	// ChaosSlowPartition injects Delay before every response from the
	// named partition's members for Duration (0 = rest of the run).
	ChaosSlowPartition = "slow_partition"
	// ChaosReshard runs one live reshard against the coordinator
	// mid-measurement: the harness provisions a fresh replica set and
	// drives POST /admin/reshard, so the workload crosses a routing-epoch
	// cutover. Mode "split" (the default) has the fresh set join as a new
	// partition with an auto-picked balanced slot share; mode "merge"
	// retires the partitions listed in Merge into the fresh set.
	ChaosReshard = "reshard"
)

// ChaosEvent schedules one fault injection. At is the offset from the
// start of the measurement phase. Chaos requires a harness-launched
// cluster (attach mode has no handle on the target's processes).
type ChaosEvent struct {
	At        Duration `json:"at"`
	Action    string   `json:"action"`
	Partition int      `json:"partition,omitempty"`
	Member    int      `json:"member,omitempty"`
	Delay     Duration `json:"delay,omitempty"`
	Duration  Duration `json:"duration,omitempty"`
	// Mode selects the reshard flavor: "split" (default) or "merge".
	Mode string `json:"mode,omitempty"`
	// Merge lists the partitions a reshard merge retires into the fresh
	// target set. Partition indices are as of the event firing — an
	// earlier split shifts them, so order reshard events accordingly.
	Merge []int `json:"merge,omitempty"`
}

// TimepointDist declares how read timepoints are drawn from the history
// [0, TimeMax]. "uniform" spreads reads over the whole history (cache
// -hostile); "hotkey" concentrates HotWeight of the reads on a small set
// of HotFraction×1000 distinct timepoints (cache-friendly; the shape a
// dashboard or a popular analysis notebook produces).
type TimepointDist struct {
	Distribution string  `json:"distribution,omitempty"` // "uniform" (default) | "hotkey"
	HotFraction  float64 `json:"hot_fraction,omitempty"` // share of 1000 candidate points that are hot (default 0.1)
	HotWeight    float64 `json:"hot_weight,omitempty"`   // share of reads that hit the hot set (default 0.9)
}

// Scenario declares one load run. Zero values take documented defaults
// (Normalize applies them); ParseScenario rejects unknown fields so a
// typo fails loudly instead of silently running the default workload.
type Scenario struct {
	// Name labels the run in results and BENCH records.
	Name string `json:"name"`
	// Seed drives every random choice (endpoint picks, timepoints,
	// node IDs). Two runs of the same scenario against the same data
	// issue the same request sequence per client.
	Seed int64 `json:"seed,omitempty"`
	// Clients is the number of concurrent closed-loop workers.
	Clients int `json:"clients"`
	// Duration is the measurement phase length.
	Duration Duration `json:"duration"`
	// Warmup runs the same workload unrecorded first, so caches and
	// connection pools settle before the clock starts.
	Warmup Duration `json:"warmup,omitempty"`
	// Mode is "closed" (default: each client issues its next request
	// when the previous answer lands, optionally paced by TargetRPS) or
	// "open" (a dispatcher emits request slots at TargetRPS regardless
	// of completions; latency is measured from the intended start, so
	// a slow server accrues queueing delay instead of hiding it).
	Mode string `json:"mode,omitempty"`
	// TargetRPS is the aggregate request rate to hold. Required in open
	// mode; 0 in closed mode means unpaced (as fast as the loop turns).
	TargetRPS float64 `json:"target_rps,omitempty"`
	// Burst is the token-bucket burst for paced closed-loop runs
	// (default: Clients).
	Burst int `json:"burst,omitempty"`
	// Wire selects the client codec: "json" (default), "binary", or
	// "stream" (binary + chunked snapshot stream on reads).
	Wire string `json:"wire,omitempty"`
	// Mix weights the endpoints; weights are relative, not percentages.
	// Endpoints absent or weighted 0 are never issued. At least one
	// weight must be positive.
	Mix map[string]float64 `json:"mix"`
	// Timepoints declares the read-timepoint distribution.
	Timepoints TimepointDist `json:"timepoints,omitempty"`
	// SnapshotFull asks /snapshot and /batch for full element lists
	// instead of counts.
	SnapshotFull bool `json:"snapshot_full,omitempty"`
	// BatchSize is the timepoints per /batch request (default 4).
	BatchSize int `json:"batch_size,omitempty"`
	// AppendSize is the events per /append batch (default 8).
	AppendSize int `json:"append_size,omitempty"`
	// RequestTimeout bounds each request (default 15s).
	RequestTimeout Duration `json:"request_timeout,omitempty"`
	// TimeMax is the upper end of the read-timepoint domain. 0 lets the
	// harness learn it (launch mode preload, or a /stats probe in
	// attach mode); a positive value pins it.
	TimeMax int64 `json:"time_max,omitempty"`
	// NodeMax is the upper end of the /neighbors node-ID domain. 0 lets
	// the harness learn it like TimeMax.
	NodeMax int64 `json:"node_max,omitempty"`
	// Chaos schedules fault injections during the measurement phase.
	Chaos []ChaosEvent `json:"chaos,omitempty"`
}

// ParseScenario decodes and validates a scenario document. Unknown
// fields are errors.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.Normalize(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Normalize applies defaults and validates the scenario in place.
func (sc *Scenario) Normalize() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if sc.Clients <= 0 {
		return fmt.Errorf("scenario %s: clients must be positive", sc.Name)
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("scenario %s: duration must be positive", sc.Name)
	}
	if sc.Warmup < 0 {
		return fmt.Errorf("scenario %s: warmup must not be negative", sc.Name)
	}
	switch sc.Mode {
	case "":
		sc.Mode = "closed"
	case "closed", "open":
	default:
		return fmt.Errorf("scenario %s: mode %q (want closed or open)", sc.Name, sc.Mode)
	}
	if sc.TargetRPS < 0 {
		return fmt.Errorf("scenario %s: target_rps must not be negative", sc.Name)
	}
	if sc.Mode == "open" && sc.TargetRPS == 0 {
		return fmt.Errorf("scenario %s: open mode requires target_rps", sc.Name)
	}
	if sc.Burst == 0 {
		sc.Burst = sc.Clients
	}
	if sc.Burst < 1 {
		return fmt.Errorf("scenario %s: burst must be positive", sc.Name)
	}
	switch sc.Wire {
	case "":
		sc.Wire = "json"
	case "json", "binary", "stream":
	default:
		return fmt.Errorf("scenario %s: wire %q (want json, binary or stream)", sc.Name, sc.Wire)
	}
	if len(sc.Mix) == 0 {
		return fmt.Errorf("scenario %s: mix is required", sc.Name)
	}
	total := 0.0
	for name, w := range sc.Mix {
		if !validEndpoint(name) {
			return fmt.Errorf("scenario %s: unknown mix endpoint %q (want one of %v)", sc.Name, name, endpointNames)
		}
		if w < 0 {
			return fmt.Errorf("scenario %s: mix weight for %s must not be negative", sc.Name, name)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("scenario %s: mix has no positive weight", sc.Name)
	}
	switch sc.Timepoints.Distribution {
	case "":
		sc.Timepoints.Distribution = "uniform"
	case "uniform", "hotkey":
	default:
		return fmt.Errorf("scenario %s: timepoints.distribution %q (want uniform or hotkey)", sc.Name, sc.Timepoints.Distribution)
	}
	if sc.Timepoints.HotFraction == 0 {
		sc.Timepoints.HotFraction = 0.1
	}
	if sc.Timepoints.HotWeight == 0 {
		sc.Timepoints.HotWeight = 0.9
	}
	if f := sc.Timepoints.HotFraction; f <= 0 || f > 1 {
		return fmt.Errorf("scenario %s: timepoints.hot_fraction %v out of (0, 1]", sc.Name, f)
	}
	if w := sc.Timepoints.HotWeight; w <= 0 || w > 1 {
		return fmt.Errorf("scenario %s: timepoints.hot_weight %v out of (0, 1]", sc.Name, w)
	}
	if sc.BatchSize == 0 {
		sc.BatchSize = 4
	}
	if sc.BatchSize < 1 {
		return fmt.Errorf("scenario %s: batch_size must be positive", sc.Name)
	}
	if sc.AppendSize == 0 {
		sc.AppendSize = 8
	}
	if sc.AppendSize < 1 {
		return fmt.Errorf("scenario %s: append_size must be positive", sc.Name)
	}
	if sc.RequestTimeout == 0 {
		sc.RequestTimeout = Duration(15 * time.Second)
	}
	if sc.RequestTimeout < 0 {
		return fmt.Errorf("scenario %s: request_timeout must be positive", sc.Name)
	}
	for i, ce := range sc.Chaos {
		switch ce.Action {
		case ChaosKillReplica:
			if ce.Delay != 0 || ce.Duration != 0 {
				return fmt.Errorf("scenario %s: chaos[%d]: %s takes no delay/duration", sc.Name, i, ce.Action)
			}
		case ChaosSlowPartition:
			if ce.Delay <= 0 {
				return fmt.Errorf("scenario %s: chaos[%d]: %s requires a positive delay", sc.Name, i, ce.Action)
			}
		case ChaosReshard:
			if ce.Delay != 0 || ce.Duration != 0 {
				return fmt.Errorf("scenario %s: chaos[%d]: %s takes no delay/duration", sc.Name, i, ce.Action)
			}
			switch ce.Mode {
			case "", "split":
				if len(ce.Merge) > 0 {
					return fmt.Errorf("scenario %s: chaos[%d]: a merge list requires mode \"merge\"", sc.Name, i)
				}
			case "merge":
				if len(ce.Merge) == 0 {
					return fmt.Errorf("scenario %s: chaos[%d]: mode \"merge\" requires a merge list", sc.Name, i)
				}
				for _, p := range ce.Merge {
					if p < 0 {
						return fmt.Errorf("scenario %s: chaos[%d]: merge partition must not be negative", sc.Name, i)
					}
				}
			default:
				return fmt.Errorf("scenario %s: chaos[%d]: reshard mode %q (want split or merge)", sc.Name, i, ce.Mode)
			}
		default:
			return fmt.Errorf("scenario %s: chaos[%d]: unknown action %q (want %s, %s or %s)",
				sc.Name, i, ce.Action, ChaosKillReplica, ChaosSlowPartition, ChaosReshard)
		}
		if ce.At < 0 {
			return fmt.Errorf("scenario %s: chaos[%d]: at must not be negative", sc.Name, i)
		}
		if ce.At.D() >= sc.Duration.D() {
			return fmt.Errorf("scenario %s: chaos[%d]: at %v is past the %v measurement phase",
				sc.Name, i, ce.At.D(), sc.Duration.D())
		}
		if ce.Partition < 0 || ce.Member < 0 {
			return fmt.Errorf("scenario %s: chaos[%d]: partition/member must not be negative", sc.Name, i)
		}
	}
	return nil
}

// Endpoints returns the mix's positively weighted endpoint names in a
// stable order (the order results report in).
func (sc *Scenario) Endpoints() []string {
	var eps []string
	for name, w := range sc.Mix {
		if w > 0 {
			eps = append(eps, name)
		}
	}
	sort.Strings(eps)
	return eps
}

func validEndpoint(name string) bool {
	for _, n := range endpointNames {
		if n == name {
			return true
		}
	}
	return false
}

// String is a compact one-line description for logs.
func (sc *Scenario) String() string {
	pace := "unpaced"
	if sc.TargetRPS > 0 {
		pace = strconv.FormatFloat(sc.TargetRPS, 'f', -1, 64) + " rps"
	}
	return fmt.Sprintf("%s: %d clients, %s %s, %v measure (+%v warmup), wire %s",
		sc.Name, sc.Clients, sc.Mode, pace, sc.Duration.D(), sc.Warmup.D(), sc.Wire)
}
