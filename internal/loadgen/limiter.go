package loadgen

import (
	"context"
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter: tokens accrue at rate per
// second up to burst, and every Wait consumes one. A fresh limiter
// starts full, so a run's first burst requests go out immediately and
// the steady state settles at the target rate — the standard bucket
// shape, chosen so short scenarios still average within a burst's worth
// of the target.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewLimiter returns a limiter granting rate tokens per second with the
// given burst capacity (minimum 1).
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// Wait blocks until a token is available or ctx is done. The sleep is
// computed from the exact deficit, so concurrent waiters do not spin.
func (l *Limiter) Wait(ctx context.Context) error {
	for {
		l.mu.Lock()
		now := time.Now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
		l.last = now
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		// Sleep until this waiter's token would exist if it were next in
		// line. Under heavy contention several waiters wake together and
		// all but the winners loop — acceptable: the bucket stays exact,
		// the wakeups are merely early.
		wait := time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
		l.mu.Unlock()
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}
