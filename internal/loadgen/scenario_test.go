package loadgen

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseScenarioDefaults(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"name": "smoke",
		"clients": 4,
		"duration": "2s",
		"mix": {"snapshot": 3, "neighbors": 1, "append": 0}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mode != "closed" || sc.Wire != "json" {
		t.Errorf("defaults: mode %q wire %q", sc.Mode, sc.Wire)
	}
	if sc.Burst != 4 {
		t.Errorf("burst defaults to clients, got %d", sc.Burst)
	}
	if sc.BatchSize != 4 || sc.AppendSize != 8 {
		t.Errorf("batch/append sizes: %d/%d", sc.BatchSize, sc.AppendSize)
	}
	if sc.RequestTimeout.D() != 15*time.Second {
		t.Errorf("request timeout default: %v", sc.RequestTimeout.D())
	}
	if sc.Timepoints.Distribution != "uniform" {
		t.Errorf("timepoints default: %q", sc.Timepoints.Distribution)
	}
	// Zero-weighted endpoints are excluded from the driven set.
	if eps := sc.Endpoints(); len(eps) != 2 || eps[0] != "neighbors" || eps[1] != "snapshot" {
		t.Errorf("Endpoints() = %v", eps)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"unknown field", `{"name":"x","clients":1,"duration":"1s","mix":{"snapshot":1},"durationn":"2s"}`, "unknown field"},
		{"missing name", `{"clients":1,"duration":"1s","mix":{"snapshot":1}}`, "name is required"},
		{"no clients", `{"name":"x","duration":"1s","mix":{"snapshot":1}}`, "clients must be positive"},
		{"no duration", `{"name":"x","clients":1,"mix":{"snapshot":1}}`, "duration must be positive"},
		{"numeric duration", `{"name":"x","clients":1,"duration":2,"mix":{"snapshot":1}}`, "durations are strings"},
		{"bad mode", `{"name":"x","clients":1,"duration":"1s","mode":"ajar","mix":{"snapshot":1}}`, "want closed or open"},
		{"open needs rps", `{"name":"x","clients":1,"duration":"1s","mode":"open","mix":{"snapshot":1}}`, "open mode requires target_rps"},
		{"bad wire", `{"name":"x","clients":1,"duration":"1s","wire":"carrier-pigeon","mix":{"snapshot":1}}`, "want json, binary or stream"},
		{"no mix", `{"name":"x","clients":1,"duration":"1s"}`, "mix is required"},
		{"bad endpoint", `{"name":"x","clients":1,"duration":"1s","mix":{"teleport":1}}`, "unknown mix endpoint"},
		{"all zero mix", `{"name":"x","clients":1,"duration":"1s","mix":{"snapshot":0}}`, "no positive weight"},
		{"negative weight", `{"name":"x","clients":1,"duration":"1s","mix":{"snapshot":-1}}`, "must not be negative"},
		{"bad distribution", `{"name":"x","clients":1,"duration":"1s","mix":{"snapshot":1},"timepoints":{"distribution":"zipf"}}`, "want uniform or hotkey"},
		{"hot fraction range", `{"name":"x","clients":1,"duration":"1s","mix":{"snapshot":1},"timepoints":{"distribution":"hotkey","hot_fraction":1.5}}`, "hot_fraction"},
		{"bad chaos action", `{"name":"x","clients":1,"duration":"5s","mix":{"snapshot":1},"chaos":[{"at":"1s","action":"unplug"}]}`, "unknown action"},
		{"chaos past end", `{"name":"x","clients":1,"duration":"5s","mix":{"snapshot":1},"chaos":[{"at":"6s","action":"kill_replica"}]}`, "past the"},
		{"kill takes no delay", `{"name":"x","clients":1,"duration":"5s","mix":{"snapshot":1},"chaos":[{"at":"1s","action":"kill_replica","delay":"10ms"}]}`, "takes no delay"},
		{"slow needs delay", `{"name":"x","clients":1,"duration":"5s","mix":{"snapshot":1},"chaos":[{"at":"1s","action":"slow_partition"}]}`, "requires a positive delay"},
		{"reshard takes no delay", `{"name":"x","clients":1,"duration":"5s","mix":{"snapshot":1},"chaos":[{"at":"1s","action":"reshard","delay":"10ms"}]}`, "takes no delay"},
		{"reshard bad mode", `{"name":"x","clients":1,"duration":"5s","mix":{"snapshot":1},"chaos":[{"at":"1s","action":"reshard","mode":"shuffle"}]}`, "want split or merge"},
		{"reshard split no merge list", `{"name":"x","clients":1,"duration":"5s","mix":{"snapshot":1},"chaos":[{"at":"1s","action":"reshard","merge":[1]}]}`, "requires mode"},
		{"reshard merge needs list", `{"name":"x","clients":1,"duration":"5s","mix":{"snapshot":1},"chaos":[{"at":"1s","action":"reshard","mode":"merge"}]}`, "requires a merge list"},
		{"reshard merge negative", `{"name":"x","clients":1,"duration":"5s","mix":{"snapshot":1},"chaos":[{"at":"1s","action":"reshard","mode":"merge","merge":[-1]}]}`, "must not be negative"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(c.doc))
			if err == nil {
				t.Fatalf("accepted invalid scenario")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParseScenarioChaos(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"name": "chaos",
		"clients": 2,
		"duration": "10s",
		"mix": {"snapshot": 1},
		"chaos": [
			{"at": "2s", "action": "kill_replica", "partition": 1, "member": 1},
			{"at": "5s", "action": "slow_partition", "partition": 0, "delay": "20ms", "duration": "3s"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Chaos) != 2 {
		t.Fatalf("chaos events: %d", len(sc.Chaos))
	}
	if sc.Chaos[0].Action != ChaosKillReplica || sc.Chaos[0].Partition != 1 || sc.Chaos[0].Member != 1 {
		t.Errorf("chaos[0] = %+v", sc.Chaos[0])
	}
	if sc.Chaos[1].Delay.D() != 20*time.Millisecond || sc.Chaos[1].Duration.D() != 3*time.Second {
		t.Errorf("chaos[1] = %+v", sc.Chaos[1])
	}
}

// TestParseScenarioReshard: both reshard flavors parse, and the split
// mode defaults when the document leaves it out.
func TestParseScenarioReshard(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"name": "reshard",
		"clients": 2,
		"duration": "20s",
		"mix": {"snapshot": 1, "append": 1},
		"chaos": [
			{"at": "5s", "action": "reshard"},
			{"at": "12s", "action": "reshard", "mode": "merge", "merge": [1, 2]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Chaos) != 2 {
		t.Fatalf("chaos events: %d", len(sc.Chaos))
	}
	if sc.Chaos[0].Action != ChaosReshard || sc.Chaos[0].Mode != "" || len(sc.Chaos[0].Merge) != 0 {
		t.Errorf("chaos[0] = %+v", sc.Chaos[0])
	}
	if sc.Chaos[1].Mode != "merge" || len(sc.Chaos[1].Merge) != 2 {
		t.Errorf("chaos[1] = %+v", sc.Chaos[1])
	}
}

// TestDurationRoundTrip: Duration marshals back to the string it parsed.
func TestDurationRoundTrip(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"1m30s"`), &d); err != nil {
		t.Fatal(err)
	}
	if d.D() != 90*time.Second {
		t.Fatalf("parsed %v", d.D())
	}
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"1m30s"` {
		t.Fatalf("marshaled %s", out)
	}
}
