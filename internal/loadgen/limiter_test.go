package loadgen

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterRateUnderBurst hammers the bucket from many goroutines and
// checks the grant count over a window: the initial burst plus the
// refill rate, inside a generous tolerance (CI schedulers are noisy).
func TestLimiterRateUnderBurst(t *testing.T) {
	const (
		rate   = 1000.0
		burst  = 50
		window = 600 * time.Millisecond
	)
	lim := NewLimiter(rate, burst)
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()

	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lim.Wait(ctx) == nil {
				granted.Add(1)
			}
		}()
	}
	wg.Wait()

	want := rate*window.Seconds() + burst // 650
	got := float64(granted.Load())
	if got < want*0.65 || got > want*1.25 {
		t.Fatalf("granted %v tokens over %v at rate %v burst %d, want ~%v", got, window, rate, burst, want)
	}
}

// TestLimiterBurstImmediate: a fresh bucket grants its whole burst
// without blocking.
func TestLimiterBurstImmediate(t *testing.T) {
	lim := NewLimiter(1, 10) // 1/s refill: any blocking wait would be visible
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := lim.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("draining the burst took %v, want immediate", d)
	}
}

// TestLimiterCancel: a blocked Wait returns the context error.
func TestLimiterCancel(t *testing.T) {
	lim := NewLimiter(0.001, 1)
	if err := lim.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := lim.Wait(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Wait on an empty bucket = %v, want deadline exceeded", err)
	}
}
