package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"historygraph"
	"historygraph/internal/metrics"
	"historygraph/internal/server"
	"historygraph/internal/wire"
)

// Chaos is the handle a harness-launched cluster gives the runner for
// scenario-scheduled fault injection. Attach mode has no such handle:
// scenarios with chaos events require a launched cluster.
type Chaos interface {
	// KillReplica stops partition p's member m (0 = the initial
	// primary) for the rest of the run.
	KillReplica(p, m int) error
	// SlowPartition injects delay before every response from partition
	// p's members for dur (0 = the rest of the run).
	SlowPartition(p int, delay, dur time.Duration) error
	// Reshard provisions a fresh replica set and runs one live reshard
	// through the coordinator: mode "split" (or "") has the set join as
	// a new partition with an auto-picked slot share; mode "merge"
	// retires the listed partitions into it. Blocks until the cutover
	// epoch is installed (or the reshard failed).
	Reshard(mode string, merge []int) error
}

// Options configures a Run beyond what the scenario declares.
type Options struct {
	// Target is the base URL the workload is aimed at (a coordinator or
	// a single server).
	Target string
	// HTTPClient overrides the transport (defaults to a pooled client
	// sized for the scenario's concurrency, no global timeout — each
	// request is bounded by the scenario's request_timeout).
	HTTPClient *http.Client
	// Chaos executes the scenario's chaos events; nil with a chaotic
	// scenario is an error.
	Chaos Chaos
	// TimeMax / NodeMax bound the read domains when the scenario leaves
	// them 0 (launch mode learns them from the preload).
	TimeMax int64
	NodeMax int64
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// SkipServerCheck disables the post-run /metrics scrape cross-check
	// (for targets without a metrics plane).
	SkipServerCheck bool
}

// EndpointStats is one endpoint's share of a Result.
type EndpointStats struct {
	// Count is successful (2xx) completions inside the measurement
	// phase; the latency quantiles are over exactly these.
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors"`
	ChaosErrors int64   `json:"chaos_errors,omitempty"`
	Partials    int64   `json:"partials,omitempty"`
	MeanMs      float64 `json:"mean_ms"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	MaxMs       float64 `json:"max_ms"`
	// ErrorSamples holds the first few error strings seen on this
	// endpoint (chaos-window ones prefixed "[chaos]"), so a failed gate
	// names its cause in the artifact instead of just a count.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// ServerCheck is the post-run cross-check of the client's own counts
// against the target's /metrics scrape.
type ServerCheck struct {
	Scraped bool `json:"scraped"`
	// Requests2xx sums dg_http_requests_total across the driven
	// endpoints' 2xx series. It includes warmup (and any concurrent
	// traffic), so consistency means scraped >= client-measured.
	Requests2xx    int64 `json:"requests_2xx"`
	ClientMeasured int64 `json:"client_measured"`
	Consistent     bool  `json:"consistent"`
	// P50Ms/P99Ms are the server's own request-duration quantiles over
	// the driven endpoints (from dg_http_request_duration_seconds), the
	// number an operator's dashboard would show for the same window.
	P50Ms float64 `json:"p50_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
	Note  string  `json:"note,omitempty"`
}

// Result is one run's artifact. It marshals to the JSON file
// cmd/dgtraffic writes; BenchRecord projects it into the BENCH_*.json
// benchmark family for cmd/benchdiff.
type Result struct {
	Scenario       string                    `json:"scenario"`
	Target         string                    `json:"target"`
	Mode           string                    `json:"mode"`
	Wire           string                    `json:"wire"`
	Clients        int                       `json:"clients"`
	TargetRPS      float64                   `json:"target_rps,omitempty"`
	AchievedRPS    float64                   `json:"achieved_rps"`
	MeasureSeconds float64                   `json:"measure_seconds"`
	Requests       int64                     `json:"requests"`
	Errors         int64                     `json:"errors"`
	ChaosErrors    int64                     `json:"chaos_errors,omitempty"`
	Partials       int64                     `json:"partials,omitempty"`
	ScheduleLag    int64                     `json:"schedule_lag,omitempty"`
	Endpoints      map[string]*EndpointStats `json:"endpoints"`
	ChaosApplied   []string                  `json:"chaos_applied,omitempty"`
	Server         *ServerCheck              `json:"server_check,omitempty"`
}

// BenchRecord projects the result into benchmark name→value pairs plus
// their units, the shape cmd/benchdiff merges into a BENCH_*.json
// record. Throughput carries unit "rps" (higher is better); latencies
// carry "ms" (lower is better) — benchdiff compare reads the unit to
// orient its regression check.
func (r *Result) BenchRecord() (benchmarks map[string]float64, units map[string]string) {
	benchmarks = map[string]float64{}
	units = map[string]string{}
	prefix := "Load/" + r.Scenario
	benchmarks[prefix+"/throughput_rps"] = r.AchievedRPS
	units[prefix+"/throughput_rps"] = "rps"
	for name, ep := range r.Endpoints {
		if ep.Count == 0 {
			continue
		}
		for _, q := range []struct {
			suffix string
			value  float64
		}{{"p50_ms", ep.P50Ms}, {"p99_ms", ep.P99Ms}} {
			key := prefix + "/" + name + "_" + q.suffix
			benchmarks[key] = q.value
			units[key] = "ms"
		}
	}
	return benchmarks, units
}

// GateErrors returns a non-nil error when the run should fail a CI
// gate: any non-chaos error, or an endpoint that was in the mix but
// recorded nothing (an empty histogram means the scenario did not
// actually exercise what it claims to).
func (r *Result) GateErrors() error {
	var problems []string
	if r.Errors > 0 {
		problems = append(problems, fmt.Sprintf("%d non-chaos errors", r.Errors))
	}
	for name, ep := range r.Endpoints {
		if ep.Count == 0 {
			problems = append(problems, fmt.Sprintf("endpoint %s recorded no successful requests (empty histogram)", name))
		}
	}
	if r.Server != nil && r.Server.Scraped && !r.Server.Consistent {
		problems = append(problems, fmt.Sprintf("server scrape saw %d 2xx requests but clients measured %d",
			r.Server.Requests2xx, r.Server.ClientMeasured))
	}
	if len(problems) == 0 {
		return nil
	}
	return errors.New(strings.Join(problems, "; "))
}

// errSampleCap bounds how many error strings each endpoint keeps for
// the result artifact.
const errSampleCap = 4

// epAgg accumulates one endpoint's measurement-phase outcomes.
type epAgg struct {
	hist        Hist
	errors      atomic.Int64
	chaosErrors atomic.Int64
	partials    atomic.Int64

	errMu      sync.Mutex
	errSamples []string
}

// sampleError keeps the first errSampleCap error strings.
func (a *epAgg) sampleError(s string) {
	a.errMu.Lock()
	if len(a.errSamples) < errSampleCap {
		a.errSamples = append(a.errSamples, s)
	}
	a.errMu.Unlock()
}

// runState is everything the workers share.
type runState struct {
	sc   *Scenario
	opts Options

	measuring  atomic.Bool
	graceUntil atomic.Int64 // unix nanos; errors before this are chaos errors
	lag        atomic.Int64 // open mode: dispatcher slots delivered late

	eps map[string]*epAgg

	// Appends must reach the store in nondecreasing event-time order
	// (the index rejects time travel with a 422). Workers append
	// concurrently off a shared atomic clock: each batch takes the next
	// timestamp and a fresh run of node IDs without blocking on other
	// writers' requests, which is what lets the server's pipelined
	// append path see overlapping batches. A batch that loses the race
	// (a later stamp applied first) is re-stamped with a fresh timestamp
	// and retried, bounded by appendRestampLimit.
	nextTime atomic.Int64
	nextNode atomic.Int64
}

// worker is one closed-loop client.
type worker struct {
	st     *runState
	client *server.Client
	rng    *rand.Rand
	cum    []float64 // cumulative mix weights, parallel to eps
	names  []string
	hot    []int64 // hotkey timepoint set (nil for uniform)
}

// Run executes the scenario against opts.Target and returns the result.
// It blocks for warmup + duration (plus request drain).
func Run(ctx context.Context, sc *Scenario, opts Options) (*Result, error) {
	if err := sc.Normalize(); err != nil {
		return nil, err
	}
	if opts.Target == "" {
		return nil, fmt.Errorf("loadgen: no target")
	}
	if len(sc.Chaos) > 0 && opts.Chaos == nil {
		return nil, fmt.Errorf("loadgen: scenario %s schedules chaos but the target is attached, not launched (no process handle to kill or slow)", sc.Name)
	}
	timeMax := sc.TimeMax
	if timeMax == 0 {
		timeMax = opts.TimeMax
	}
	if timeMax <= 0 && needsTimepoints(sc) {
		return nil, fmt.Errorf("loadgen: scenario %s needs a read-timepoint domain: set time_max or preload the cluster", sc.Name)
	}
	nodeMax := sc.NodeMax
	if nodeMax == 0 {
		nodeMax = opts.NodeMax
	}
	if nodeMax <= 0 && sc.Mix["neighbors"] > 0 {
		return nil, fmt.Errorf("loadgen: scenario %s drives /neighbors: set node_max or preload the cluster", sc.Name)
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	hc := opts.HTTPClient
	if hc == nil {
		tr := &http.Transport{
			MaxIdleConns:        sc.Clients * 2,
			MaxIdleConnsPerHost: sc.Clients * 2,
		}
		hc = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}

	st := &runState{
		sc:   sc,
		opts: opts,
		eps:  map[string]*epAgg{},
	}
	st.nextTime.Store(timeMax + 1)
	st.nextNode.Store(nodeMax + 1)
	names := sc.Endpoints()
	for _, name := range names {
		st.eps[name] = &epAgg{}
	}

	// Per-worker clients with deterministic RNG streams.
	workers := make([]*worker, sc.Clients)
	for i := range workers {
		cl := server.NewClientHTTP(opts.Target, hc)
		if sc.Wire != "json" {
			if _, err := cl.SetWire(sc.Wire); err != nil {
				return nil, err
			}
		}
		w := &worker{
			st:     st,
			client: cl,
			rng:    rand.New(rand.NewSource(sc.Seed + int64(i)*7919 + 1)),
			names:  names,
		}
		var cum float64
		for _, name := range names {
			cum += sc.Mix[name]
			w.cum = append(w.cum, cum)
		}
		if sc.Timepoints.Distribution == "hotkey" {
			k := int(sc.Timepoints.HotFraction * 1000)
			if k < 1 {
				k = 1
			}
			w.hot = make([]int64, k)
			for j := range w.hot {
				// A deterministic spread over the history; every worker
				// shares the same hot set, which is the point.
				w.hot[j] = timeMax * int64(j+1) / int64(k+1)
			}
		}
		workers[i] = w
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var lim *Limiter
	if sc.Mode == "closed" && sc.TargetRPS > 0 {
		lim = NewLimiter(sc.TargetRPS, sc.Burst)
	}
	var slots chan time.Time
	if sc.Mode == "open" {
		slots = make(chan time.Time, sc.Clients*4)
		go dispatch(runCtx, sc.TargetRPS, slots, &st.lag)
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.loop(runCtx, timeMax, nodeMax, lim, slots)
		}(w)
	}

	logf("loadgen: %s against %s", sc, opts.Target)
	if sc.Warmup > 0 {
		if !sleepCtx(ctx, sc.Warmup.D()) {
			cancelRun()
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	st.measuring.Store(true)
	measureStart := time.Now()
	logf("loadgen: warmup done, measuring for %v", sc.Duration.D())

	var chaosApplied []string
	var chaosMu sync.Mutex
	var chaosWg sync.WaitGroup
	for _, ce := range sc.Chaos {
		chaosWg.Add(1)
		go func(ce ChaosEvent) {
			defer chaosWg.Done()
			if !sleepCtx(runCtx, ce.At.D()) {
				return
			}
			if ce.Action == ChaosReshard {
				// The reshard blocks through its cutover, so errors racing
				// the migration or the epoch flip land while applyChaos is
				// still running — open the grace window up front and let
				// the post-return store trim it to the settle period.
				st.graceUntil.Store(time.Now().Add(time.Hour).UnixNano())
			}
			desc, grace := applyChaos(opts.Chaos, ce)
			st.graceUntil.Store(time.Now().Add(grace).UnixNano())
			chaosMu.Lock()
			chaosApplied = append(chaosApplied, desc)
			chaosMu.Unlock()
			logf("loadgen: chaos at +%v: %s", ce.At.D(), desc)
		}(ce)
	}

	if !sleepCtx(ctx, sc.Duration.D()) {
		cancelRun()
		wg.Wait()
		return nil, ctx.Err()
	}
	st.measuring.Store(false)
	measured := time.Since(measureStart).Seconds()
	cancelRun()
	wg.Wait()
	chaosWg.Wait() // join the injectors before reading chaosApplied

	res := &Result{
		Scenario:       sc.Name,
		Target:         opts.Target,
		Mode:           sc.Mode,
		Wire:           sc.Wire,
		Clients:        sc.Clients,
		TargetRPS:      sc.TargetRPS,
		MeasureSeconds: measured,
		ScheduleLag:    st.lag.Load(),
		Endpoints:      map[string]*EndpointStats{},
		ChaosApplied:   chaosApplied,
	}
	var successes int64
	for _, name := range names {
		agg := st.eps[name]
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		es := &EndpointStats{
			Count:       agg.hist.Count(),
			Errors:      agg.errors.Load(),
			ChaosErrors: agg.chaosErrors.Load(),
			Partials:    agg.partials.Load(),
			MeanMs:      ms(agg.hist.Mean()),
			P50Ms:       ms(agg.hist.Quantile(0.50)),
			P90Ms:       ms(agg.hist.Quantile(0.90)),
			P99Ms:       ms(agg.hist.Quantile(0.99)),
			P999Ms:      ms(agg.hist.Quantile(0.999)),
			MaxMs:       ms(agg.hist.Max()),
		}
		agg.errMu.Lock()
		es.ErrorSamples = append([]string(nil), agg.errSamples...)
		agg.errMu.Unlock()
		res.Endpoints[name] = es
		successes += es.Count
		res.Requests += es.Count + es.Errors + es.ChaosErrors
		res.Errors += es.Errors
		res.ChaosErrors += es.ChaosErrors
		res.Partials += es.Partials
	}
	if measured > 0 {
		res.AchievedRPS = float64(successes) / measured
	}
	if !opts.SkipServerCheck {
		res.Server = scrapeCheck(ctx, hc, opts.Target, names, successes)
	}
	return res, nil
}

func needsTimepoints(sc *Scenario) bool {
	for _, name := range []string{"snapshot", "neighbors", "batch", "interval", "stream", "analytics"} {
		if sc.Mix[name] > 0 {
			return true
		}
	}
	return false
}

// dispatch emits one request slot per 1/rps seconds, stamped with its
// intended start time. When every worker is busy and the queue is full
// the schedule slips; each slipped slot is counted, and its eventual
// latency still runs from the intended start (no coordinated omission).
func dispatch(ctx context.Context, rps float64, slots chan<- time.Time, lag *atomic.Int64) {
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	next := time.Now()
	for ctx.Err() == nil {
		if d := time.Until(next); d > 0 {
			if !sleepCtx(ctx, d) {
				return
			}
		}
		select {
		case slots <- next:
		default:
			lag.Add(1)
			select {
			case slots <- next:
			case <-ctx.Done():
				return
			}
		}
		next = next.Add(interval)
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func applyChaos(c Chaos, ce ChaosEvent) (desc string, grace time.Duration) {
	switch ce.Action {
	case ChaosKillReplica:
		err := c.KillReplica(ce.Partition, ce.Member)
		desc = fmt.Sprintf("kill_replica p%d m%d", ce.Partition, ce.Member)
		if err != nil {
			desc += " (" + err.Error() + ")"
		}
		// Transport errors race the coordinator noticing the death and
		// any failover; give it a settle window.
		return desc, 3 * time.Second
	case ChaosSlowPartition:
		err := c.SlowPartition(ce.Partition, ce.Delay.D(), ce.Duration.D())
		desc = fmt.Sprintf("slow_partition p%d delay=%v dur=%v", ce.Partition, ce.Delay.D(), ce.Duration.D())
		if err != nil {
			desc += " (" + err.Error() + ")"
		}
		grace = ce.Duration.D() + time.Second
		if ce.Duration == 0 {
			grace = time.Hour // slowed for the rest of the run
		}
		return desc, grace
	case ChaosReshard:
		mode := ce.Mode
		if mode == "" {
			mode = "split"
		}
		err := c.Reshard(mode, ce.Merge)
		desc = "reshard " + mode
		if mode == "merge" {
			desc = fmt.Sprintf("reshard merge %v", ce.Merge)
		}
		if err != nil {
			desc += " (" + err.Error() + ")"
		}
		// Reshard blocks through the cutover, so the epoch flip lands just
		// before this returns: requests planned against the old table are
		// replanned internally, but the flip still races request deadlines
		// and the brief append gate — give the routing a settle window.
		return desc, 5 * time.Second
	}
	return "noop", 0
}

// loop is one worker's closed loop: take a slot (pacing mode decides
// how), issue one request from the mix, record the outcome.
func (w *worker) loop(ctx context.Context, timeMax, nodeMax int64, lim *Limiter, slots <-chan time.Time) {
	for ctx.Err() == nil {
		var intended time.Time
		switch {
		case slots != nil: // open loop
			select {
			case <-ctx.Done():
				return
			case intended = <-slots:
			}
		case lim != nil: // paced closed loop
			if lim.Wait(ctx) != nil {
				return
			}
			intended = time.Now()
		default: // unpaced closed loop
			intended = time.Now()
		}
		name := w.pickEndpoint()
		partial, err := w.issue(ctx, name, timeMax, nodeMax)
		elapsed := time.Since(intended)
		if ctx.Err() != nil {
			return // run shutdown aborted the request; not an outcome
		}
		if !w.st.measuring.Load() {
			continue
		}
		agg := w.st.eps[name]
		if err != nil {
			if time.Now().UnixNano() < w.st.graceUntil.Load() {
				agg.chaosErrors.Add(1)
				agg.sampleError("[chaos] " + err.Error())
			} else {
				agg.errors.Add(1)
				agg.sampleError(err.Error())
			}
			continue
		}
		agg.hist.Record(elapsed)
		if partial {
			agg.partials.Add(1)
		}
	}
}

func (w *worker) pickEndpoint() string {
	total := w.cum[len(w.cum)-1]
	x := w.rng.Float64() * total
	for i, c := range w.cum {
		if x < c {
			return w.names[i]
		}
	}
	return w.names[len(w.names)-1]
}

func (w *worker) pickTime(timeMax int64) historygraph.Time {
	if w.hot != nil && w.rng.Float64() < w.st.sc.Timepoints.HotWeight {
		return historygraph.Time(w.hot[w.rng.Intn(len(w.hot))])
	}
	return historygraph.Time(w.rng.Int63n(timeMax + 1))
}

// issue performs one request and reports whether the answer was partial
// (a scatter-gather response missing partitions) and any error.
func (w *worker) issue(ctx context.Context, name string, timeMax, nodeMax int64) (partial bool, err error) {
	rctx, cancel := context.WithTimeout(ctx, w.st.sc.RequestTimeout.D())
	defer cancel()
	switch name {
	case "snapshot":
		var resp *server.SnapshotJSON
		resp, err = w.client.SnapshotCtx(rctx, w.pickTime(timeMax), "", w.st.sc.SnapshotFull)
		partial = err == nil && len(resp.Partial) > 0
	case "stream":
		partial, err = w.issueStream(rctx, timeMax)
	case "neighbors":
		var resp *server.NeighborsJSON
		resp, err = w.client.NeighborsCtx(rctx, w.pickTime(timeMax), historygraph.NodeID(1+w.rng.Int63n(nodeMax)), "")
		partial = err == nil && len(resp.Partial) > 0
	case "batch":
		ts := make([]historygraph.Time, w.st.sc.BatchSize)
		for i := range ts {
			ts[i] = w.pickTime(timeMax)
		}
		var resp []server.SnapshotJSON
		resp, err = w.client.SnapshotsCtx(rctx, ts, "", w.st.sc.SnapshotFull)
		for i := range resp {
			partial = partial || len(resp[i].Partial) > 0
		}
	case "interval":
		a, b := w.pickTime(timeMax), w.pickTime(timeMax)
		if a > b {
			a, b = b, a
		}
		var resp *server.IntervalJSON
		resp, err = w.client.IntervalCtx(rctx, a, b+1, "", false)
		partial = err == nil && len(resp.Partial) > 0
	case "append":
		partial, err = w.issueAppend(rctx)
	case "analytics":
		partial, err = w.issueAnalytics(rctx, timeMax)
	}
	return partial, err
}

// issueAnalytics drives the /analytics plane the way a dashboard does:
// mostly cheap mergeable scans, with an occasional synchronous PageRank
// (kept short — 5 iterations — so one job cannot monopolize a closed-loop
// worker).
func (w *worker) issueAnalytics(ctx context.Context, timeMax int64) (partial bool, err error) {
	switch pick := w.rng.Intn(8); {
	case pick < 3:
		var resp *wire.DegreeDist
		resp, err = w.client.AnalyticsDegreeCtx(ctx, w.pickTime(timeMax), "")
		partial = err == nil && len(resp.Partial) > 0
	case pick < 6:
		var resp *wire.Components
		resp, err = w.client.AnalyticsComponentsCtx(ctx, w.pickTime(timeMax), "")
		partial = err == nil && len(resp.Partial) > 0
	case pick < 7:
		a, b := w.pickTime(timeMax), w.pickTime(timeMax)
		if a > b {
			a, b = b, a
		}
		var resp *wire.Evolution
		resp, err = w.client.AnalyticsEvolutionCtx(ctx, a, b, "")
		partial = err == nil && len(resp.Partial) > 0
	default:
		// All-or-nothing: a partition failure fails the job, never a
		// partial rank list.
		_, err = w.client.AnalyticsPageRankCtx(ctx, wire.PageRankRequest{
			T: int64(w.pickTime(timeMax)), Iterations: 5, TopK: 10,
		})
	}
	return partial, err
}

// issueStream drives the chunked snapshot stream end to end, draining
// every run frame the way a real consumer would.
func (w *worker) issueStream(ctx context.Context, timeMax int64) (partial bool, err error) {
	ss, err := w.client.SnapshotStreamCtx(ctx, w.pickTime(timeMax), "")
	if err != nil {
		return false, err
	}
	defer ss.Close()
	for {
		frame, err := ss.Next()
		if err == io.EOF {
			return partial, nil
		}
		if err != nil {
			return partial, err
		}
		if frame.Summary != nil && len(frame.Summary.Partial) > 0 {
			partial = true
		}
	}
}

// appendRestampLimit bounds how many times a batch that lost the
// timestamp race (a concurrent writer's later stamp applied first, 422)
// is re-stamped with a fresh clock value and retried before the error
// surfaces. Each retry takes a fresh, strictly-later stamp, so losing
// is independent per attempt; 16 attempts makes surfacing a 422 under
// even heavy writer contention vanishingly rare.
const appendRestampLimit = 16

// issueAppend appends one batch of fresh AddNode events. The store
// requires globally nondecreasing event time, so each batch takes its
// timestamp from the shared atomic clock; concurrent writers' batches
// may arrive reordered, and a batch rejected for time travel is
// re-stamped and retried — the fresh stamp is always later than
// whatever applied in the meantime.
func (w *worker) issueAppend(ctx context.Context) (partial bool, err error) {
	st := w.st
	n := int64(st.sc.AppendSize)
	first := st.nextNode.Add(n) - n
	events := make(historygraph.EventList, st.sc.AppendSize)
	for attempt := 0; ; attempt++ {
		at := historygraph.Time(st.nextTime.Add(1))
		for i := range events {
			events[i] = historygraph.Event{
				Type: historygraph.AddNode,
				At:   at,
				Node: historygraph.NodeID(first + int64(i)),
			}
		}
		res, err := w.client.AppendCtx(ctx, events)
		if err == nil {
			if len(res.Partial) == 0 {
				return false, nil
			}
			// A partial answer whose failed legs are all 422s is the same
			// stamp race seen per partition: a concurrent writer's later
			// stamp landed on some partitions before this batch's legs
			// arrived. Re-stamping and re-sending the whole batch is safe —
			// the partitions that already applied it re-apply the same
			// AddNode events as no-ops — so retry until the batch lands
			// everywhere.
			if attempt < appendRestampLimit && allStampRace(res.Partial) {
				continue
			}
			return true, nil
		}
		var he *server.HTTPError
		if attempt < appendRestampLimit && errors.As(err, &he) &&
			he.Status == http.StatusUnprocessableEntity {
			continue // lost the stamp race; retry with a later timestamp
		}
		// The batch may or may not have landed; the skipped timestamp is
		// harmless (the next batch's later time is always valid).
		return false, err
	}
}

// allStampRace reports whether every failed partition leg is a 422
// timestamp rejection — the only partial outcome a restamped retry can
// repair. Anything else (5xx, transport) is left to surface as partial.
func allStampRace(partial []server.PartitionError) bool {
	for _, pe := range partial {
		if pe.Status != http.StatusUnprocessableEntity {
			return false
		}
	}
	return true
}

// scrapeCheck cross-checks client-side accounting against the target's
// own /metrics: the cluster must have seen at least as many 2xx
// requests on the driven endpoints as the clients measured, and its
// duration histogram yields the server-side p50/p99 for the same
// endpoints.
func scrapeCheck(ctx context.Context, hc *http.Client, target string, endpoints []string, clientMeasured int64) *ServerCheck {
	check := &ServerCheck{ClientMeasured: clientMeasured}
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, strings.TrimRight(target, "/")+"/metrics", nil)
	if err != nil {
		check.Note = err.Error()
		return check
	}
	resp, err := hc.Do(req)
	if err != nil {
		check.Note = "scrape failed: " + err.Error()
		return check
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		check.Note = fmt.Sprintf("scrape failed: HTTP %d", resp.StatusCode)
		return check
	}
	samples, err := metrics.Parse(string(body))
	if err != nil {
		check.Note = "scrape parse: " + err.Error()
		return check
	}
	driven := map[string]bool{}
	for _, name := range endpoints {
		switch name {
		case "stream":
			name = "snapshot"
		case "analytics":
			// One mix entry fans over the four instrumented analytics paths.
			for _, p := range []string{"/analytics/degree", "/analytics/components",
				"/analytics/evolution", "/analytics/pagerank"} {
				driven[p] = true
			}
			continue
		}
		driven["/"+name] = true
	}
	// Aggregate the duration histogram across the driven endpoints: the
	// _bucket series share bounds, so summing per-le then extracting the
	// quantile is exact.
	type bk struct {
		le  float64
		sum uint64
	}
	leSums := map[float64]uint64{}
	for _, s := range samples {
		switch s.Name {
		case "dg_http_requests_total":
			if driven[s.Labels["endpoint"]] && strings.HasPrefix(s.Labels["code"], "2") {
				check.Requests2xx += int64(s.Value)
			}
		case "dg_http_request_duration_seconds_bucket":
			if driven[s.Labels["endpoint"]] {
				if le, perr := parseLE(s.Labels["le"]); perr == nil {
					leSums[le] += uint64(s.Value)
				}
			}
		}
	}
	check.Scraped = true
	check.Consistent = check.Requests2xx >= clientMeasured
	if len(leSums) > 0 {
		var bks []bk
		for le, sum := range leSums {
			bks = append(bks, bk{le, sum})
		}
		sort.Slice(bks, func(i, j int) bool { return bks[i].le < bks[j].le })
		var bounds []float64
		var cum []uint64
		for _, b := range bks {
			if b.le == infLE {
				cum = append(cum, b.sum)
				continue
			}
			bounds = append(bounds, b.le)
			cum = append(cum, b.sum)
		}
		if len(cum) == len(bounds)+1 {
			check.P50Ms = metrics.BucketQuantile(0.50, bounds, cum) * 1000
			check.P99Ms = metrics.BucketQuantile(0.99, bounds, cum) * 1000
		}
	}
	return check
}

// infLE stands in for +Inf in the le sort (larger than any real bound).
const infLE = 1e308

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return infLE, nil
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}
