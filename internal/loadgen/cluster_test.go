package loadgen

import (
	"context"
	"strings"
	"testing"
)

// TestClusterChaosSmoke is the in-process version of CI's loadtest job:
// a 2×2 cluster, a short mixed run, a follower killed mid-measurement.
// The coordinator must degrade to failover/retry — the gate still sees
// zero non-chaos errors and every endpoint measured.
func TestClusterChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2x2 cluster")
	}
	cluster, err := LaunchCluster(ClusterConfig{
		Partitions: 2, Replicas: 2,
		PreloadAuthors: 120,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	sc, err := ParseScenario([]byte(`{
		"name": "chaos-smoke",
		"seed": 5,
		"clients": 4,
		"duration": "2s",
		"warmup": "200ms",
		"mix": {"snapshot": 3, "neighbors": 2, "append": 1},
		"chaos": [
			{"at": "500ms", "action": "kill_replica", "partition": 1, "member": 0},
			{"at": "1s", "action": "slow_partition", "partition": 0, "delay": "5ms", "duration": "500ms"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), sc, Options{
		Target:  cluster.URL(),
		Chaos:   cluster,
		TimeMax: cluster.TimeMax(),
		NodeMax: cluster.NodeMax(),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ChaosApplied) != 2 {
		t.Errorf("chaos applied: %v", res.ChaosApplied)
	}
	// The dead follower and the slowed partition must surface as chaos
	// accounting or degraded latency — never as gate-tripping errors.
	if err := res.GateErrors(); err != nil {
		t.Errorf("gate failed under chaos: %v", err)
	}
	for _, name := range sc.Endpoints() {
		if ep := res.Endpoints[name]; ep == nil || ep.Count == 0 {
			t.Errorf("endpoint %s recorded nothing", name)
		}
	}
}

// TestClusterReshardSmoke drives the reshard chaos action end to end:
// a 2×2 cluster splits to three partitions mid-measurement, then merges
// the two newest back into one fresh set — two epoch flips under a live
// mixed workload. The gate must stay clean (the flips degrade to
// internal rerouting, never client errors) and the coordinator must end
// on the expected layout.
func TestClusterReshardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 2x2 cluster and reshards it twice")
	}
	cluster, err := LaunchCluster(ClusterConfig{
		Partitions: 2, Replicas: 2,
		PreloadAuthors: 120,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	sc, err := ParseScenario([]byte(`{
		"name": "reshard-smoke",
		"seed": 11,
		"clients": 4,
		"duration": "6s",
		"warmup": "200ms",
		"mix": {"snapshot": 3, "neighbors": 2, "append": 2, "interval": 1},
		"chaos": [
			{"at": "1s", "action": "reshard", "mode": "split"},
			{"at": "3500ms", "action": "reshard", "mode": "merge", "merge": [1, 2]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), sc, Options{
		Target:  cluster.URL(),
		Chaos:   cluster,
		TimeMax: cluster.TimeMax(),
		NodeMax: cluster.NodeMax(),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ChaosApplied) != 2 {
		t.Errorf("chaos applied: %v", res.ChaosApplied)
	}
	// A failed reshard reports its error inside the chaos description;
	// the run degrades rather than erroring, so assert success here.
	for _, desc := range res.ChaosApplied {
		if strings.Contains(desc, "(") {
			t.Errorf("reshard failed: %s", desc)
		}
	}
	if err := res.GateErrors(); err != nil {
		t.Errorf("gate failed across reshards: %v", err)
	}
	// Split (epoch 2, 3 partitions) then merge (epoch 3, back to 2).
	co := cluster.Coordinator()
	if got := co.Epoch(); got != 3 {
		t.Errorf("final epoch = %d, want 3", got)
	}
	if got := co.NumPartitions(); got != 2 {
		t.Errorf("final partitions = %d, want 2", got)
	}
	for _, name := range sc.Endpoints() {
		if ep := res.Endpoints[name]; ep == nil || ep.Count == 0 {
			t.Errorf("endpoint %s recorded nothing", name)
		}
	}
}

// TestClusterKillValidation: chaos aimed outside the cluster shape is
// reported, not a panic.
func TestClusterKillValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a cluster")
	}
	cluster, err := LaunchCluster(ClusterConfig{
		Partitions: 1, Replicas: 1,
		PreloadAuthors: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.KillReplica(5, 0); err == nil {
		t.Error("killing a nonexistent partition succeeded")
	}
	if err := cluster.SlowPartition(9, 0, 0); err == nil {
		t.Error("slowing a nonexistent partition succeeded")
	}
}
