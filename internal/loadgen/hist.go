package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets covers int64 nanosecond values with 16 sub-buckets per
// power-of-two octave: values below 16ns are exact, everything above
// lands in a bucket whose width is 1/16 of its magnitude. That bounds
// the relative quantile error at ±1/32 (~3%) when reporting bucket
// midpoints — the HDR-histogram trade: fixed memory (a few KB), no
// retained samples, tail quantiles that stay honest at any volume.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits                         // 16 sub-buckets per octave
	histBuckets = histSub + (63-histSubBits+1)*histSub + 1 // exact region + octaves 4..63 + overflow
)

// Hist is a lock-free log-bucketed duration histogram.
type Hist struct {
	counts [histBuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // 2^k <= v < 2^(k+1), k >= histSubBits
	sub := (v >> (k - histSubBits)) & (histSub - 1)
	idx := histSub + (k-histSubBits)*histSub + int(sub)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketMid returns the midpoint value of a bucket (its representative
// for quantile extraction).
func bucketMid(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	k := (idx-histSub)/histSub + histSubBits
	sub := int64((idx - histSub) % histSub)
	low := int64(1)<<k + sub<<(k-histSubBits)
	return low + int64(1)<<(k-histSubBits)/2
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.n.Load() }

// Mean returns the mean observation (0 when empty).
func (h *Hist) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation recorded.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns the q-quantile (0 < q <= 1) as a duration, 0 when
// the histogram is empty. The answer is the midpoint of the bucket
// holding the rank, clamped to the recorded maximum so p999 of a short
// run never exceeds the slowest real request.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			v := bucketMid(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max.Load())
}
