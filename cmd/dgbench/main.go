// Command dgbench runs the experiment harness: every table and figure of
// the paper's evaluation, at a configurable scale.
//
// Usage:
//
//	dgbench [-scale 1.0] [-exp fig6,fig10] [-list]
//
// Without -exp it runs the full suite in presentation order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"historygraph/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier (1.0 ~ laptop minutes)")
	exp := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.Order {
			fmt.Println(id)
		}
		return
	}
	ids := bench.Order
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := bench.Experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "dgbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := run(bench.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (%s took %v)\n", id, time.Since(start).Round(time.Millisecond))
	}
}
