// Command benchdiff turns `go test -bench` output into a JSON benchmark
// record and gates CI on regressions against a committed baseline.
//
// Parse a bench run into JSON (ns/op per benchmark, GOMAXPROCS suffix
// stripped so records compare across machines):
//
//	go test -run xxx -bench 'BenchmarkServer|BenchmarkShard' -benchtime 3x . \
//	    | benchdiff parse -o BENCH_2.json
//
// Compare a fresh record against the committed baseline; exit non-zero
// if any benchmark got more than threshold slower:
//
//	benchdiff compare -baseline bench_baseline.json -new BENCH_2.json -threshold 0.25
//
// With -normalize, each benchmark's slowdown is measured relative to the
// median slowdown across all shared benchmarks. A hardware change (CI
// runner vs the machine that produced the baseline) shifts every
// benchmark together and is divided out; a regression in one code path
// moves that benchmark against the pack and still trips the gate. The
// trade-off: a change that slows the majority of benchmarks uniformly is
// normalized away too — watch the printed raw deltas for that.
//
// Merge several records into one (CI folds the load-harness record from
// cmd/dgtraffic into the same BENCH_N.json artifact the bench job
// produces; later files win on duplicate names):
//
//	benchdiff merge -o BENCH_7.json bench-part.json load-record.json
//
// Records may tag entries with units. Unitless entries are ns/op
// (lower is better); "rps"/"ops/s"/"qps" entries are throughput
// (higher is better) and the compare gate flips its direction for them
// automatically — a 30% throughput drop trips the same -threshold 0.25
// gate that a 30% ns/op rise does, with no sign juggling by hand.
//
// To refresh the baseline after an intentional change, commit the new
// record (CI uploads it as the BENCH artifact) as bench_baseline.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Record is the JSON shape of one benchmark run.
type Record struct {
	// Note describes where the record came from (informational).
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (without -GOMAXPROCS suffix) to
	// its value. Duplicate names keep the fastest run.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Units maps benchmark name to its unit; absent names are "ns/op".
	// The unit orients the compare gate: throughput units ("rps",
	// "ops/s", "qps") are higher-is-better, everything else (ns/op,
	// "ms" latencies) lower-is-better.
	Units map[string]string `json:"units,omitempty"`
}

// unitOf returns the record's unit for a benchmark ("ns/op" default).
func (r Record) unitOf(name string) string {
	if u, ok := r.Units[name]; ok {
		return u
	}
	return "ns/op"
}

// higherBetter reports whether larger values of the unit are better.
func higherBetter(unit string) bool {
	switch unit {
	case "rps", "ops/s", "qps", "MB/s":
		return true
	}
	return false
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "merge":
		cmdMerge(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchdiff parse [-o out.json] [-note text] < bench-output")
	fmt.Fprintln(os.Stderr, "       benchdiff compare -baseline old.json -new new.json [-threshold 0.25] [-normalize]")
	fmt.Fprintln(os.Stderr, "       benchdiff merge -o out.json [-note text] a.json b.json ...")
	os.Exit(2)
}

// cmdMerge unions several records; later files win on duplicate names.
func cmdMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "", "output path (default stdout)")
	note := fs.String("note", "", "note for the merged record (default: first input's note)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	merged := Record{Benchmarks: map[string]float64{}, Units: map[string]string{}}
	for _, path := range fs.Args() {
		rec := load(path)
		if merged.Note == "" {
			merged.Note = rec.Note
		}
		for name, v := range rec.Benchmarks {
			merged.Benchmarks[name] = v
			if u, ok := rec.Units[name]; ok {
				merged.Units[name] = u
			} else {
				delete(merged.Units, name)
			}
		}
	}
	if *note != "" {
		merged.Note = *note
	}
	if len(merged.Units) == 0 {
		merged.Units = nil
	}
	buf, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchdiff: merged %d records into %s (%d benchmarks)\n", fs.NArg(), *out, len(merged.Benchmarks))
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkShardSnapshot/cached-64   3   294842 ns/op  1234 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("o", "", "output path (default stdout)")
	note := fs.String("note", "", "provenance note stored in the record")
	fs.Parse(args)

	rec := Record{Note: *note, Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := rec.Benchmarks[m[1]]; !ok || ns < prev {
			rec.Benchmarks[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rec.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "committed baseline record")
	newPath := fs.String("new", "", "fresh record to check")
	threshold := fs.Float64("threshold", 0.25, "allowed slowdown fraction (0.25 = +25%)")
	normalize := fs.Bool("normalize", false, "divide out the median slowdown (machine-speed shift) before gating")
	fs.Parse(args)
	if *basePath == "" || *newPath == "" {
		usage()
	}

	base := load(*basePath)
	fresh := load(*newPath)

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	// worseRatio orients a comparison by the benchmark's unit: the
	// returned ratio is > 1 exactly when the fresh value is worse —
	// slower for ns/op and latency entries, lower for throughput
	// entries — so the gate below is direction-agnostic.
	worseRatio := func(name string, old, now float64) float64 {
		if higherBetter(base.unitOf(name)) {
			if now == 0 {
				return math.Inf(+1)
			}
			return old / now
		}
		if old == 0 {
			return math.Inf(+1)
		}
		return now / old
	}

	// The median worse-ratio estimates the machine-wide speed shift
	// between the baseline's hardware and this run's.
	shift := 1.0
	if *normalize {
		var ratios []float64
		for _, name := range names {
			if now, ok := fresh.Benchmarks[name]; ok {
				ratios = append(ratios, worseRatio(name, base.Benchmarks[name], now))
			}
		}
		if n := len(ratios); n > 0 {
			sort.Float64s(ratios)
			shift = ratios[n/2]
			if n%2 == 0 {
				shift = (ratios[n/2-1] + ratios[n/2]) / 2
			}
			fmt.Printf("normalizing by median speed shift %+.1f%%\n", (shift-1)*100)
		}
	}

	failed := false
	fmt.Printf("%-45s %14s %14s %9s %8s\n", "benchmark", "baseline", "new", "delta", "unit")
	for _, name := range names {
		old := base.Benchmarks[name]
		now, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Printf("%-45s %14.0f %14s %9s %8s  MISSING (refresh bench_baseline.json?)\n",
				name, old, "-", "-", base.unitOf(name))
			failed = true
			continue
		}
		// delta > 0 means "worse by that fraction" whichever way the
		// unit points.
		delta := worseRatio(name, old, now)/shift - 1
		status := ""
		if delta > *threshold {
			status = fmt.Sprintf("  REGRESSION (> +%.0f%%)", *threshold*100)
			failed = true
		}
		fmt.Printf("%-45s %14.1f %14.1f %+8.1f%% %8s%s\n", name, old, now, delta*100, base.unitOf(name), status)
	}
	for name := range fresh.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("%-45s %14s %14.0f %9s  new (not in baseline)\n", name, "-", fresh.Benchmarks[name], "-")
		}
	}
	if failed {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

func load(path string) Record {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(buf, &rec); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if len(rec.Benchmarks) == 0 {
		fatal(fmt.Errorf("%s: no benchmarks in record", path))
	}
	return rec
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
