// Command dgload bulk-loads an event trace (written by dggen) into a
// persistent DeltaGraph index and checkpoints it for later querying with
// dgquery.
//
// Usage:
//
//	dgload -in trace.bin -store /path/to/index [-L 4096] [-k 4]
//	       [-fn intersection] [-partitions 1] [-compress]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"historygraph"
	"historygraph/internal/delta"
)

func main() {
	in := flag.String("in", "", "input trace file (required)")
	store := flag.String("store", "", "index path prefix (required)")
	leafSize := flag.Int("L", 4096, "leaf-eventlist size")
	arity := flag.Int("k", 4, "arity")
	fn := flag.String("fn", "intersection", "differential function")
	partitions := flag.Int("partitions", 1, "horizontal partitions")
	compress := flag.Bool("compress", false, "compress stored payloads")
	flag.Parse()
	if *in == "" || *store == "" {
		fmt.Fprintln(os.Stderr, "dgload: -in and -store are required")
		os.Exit(2)
	}
	buf, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgload: %v\n", err)
		os.Exit(1)
	}
	events, err := delta.DecodeEvents(buf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgload: decoding trace: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	gm, err := historygraph.BuildFrom(events, historygraph.Options{
		LeafEventlistSize: *leafSize, Arity: *arity,
		DifferentialFunction: *fn, Partitions: *partitions,
		StorePath: *store, Compress: *compress,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgload: %v\n", err)
		os.Exit(1)
	}
	if err := gm.Checkpoint(); err != nil {
		fmt.Fprintf(os.Stderr, "dgload: checkpoint: %v\n", err)
		os.Exit(1)
	}
	st := gm.IndexStats()
	fmt.Printf("loaded %d events in %v: %d leaves, height %d, %.2f MB on disk\n",
		len(events), time.Since(start).Round(time.Millisecond),
		st.Leaves, st.Height, float64(st.DiskBytes)/(1<<20))
	if err := gm.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dgload: close: %v\n", err)
		os.Exit(1)
	}
}
