// Command dggen generates a synthetic event trace (Datasets 1, 2, or 3 of
// the paper, or a constant-rate model-validation trace) and writes it to a
// file in the library's binary event encoding.
//
// Usage:
//
//	dggen -dataset d1 -out trace.bin [-scale 1.0] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"historygraph/internal/datagen"
	"historygraph/internal/delta"
	"historygraph/internal/graph"
)

func main() {
	dataset := flag.String("dataset", "d1", "d1 (growing co-authorship), d2 (d1+churn), d3 (patent-like), const (constant-rate)")
	out := flag.String("out", "", "output file (required)")
	scale := flag.Float64("scale", 1.0, "size multiplier")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dggen: -out is required")
		os.Exit(2)
	}
	f := *scale
	var events graph.EventList
	switch *dataset {
	case "d1":
		events = datagen.Coauthorship(datagen.CoauthorshipConfig{
			Authors: int(2000 * f), Edges: int(12000 * f), Years: 35,
			TicksPerYear: 10000, AttrsPerNode: 10, Seed: *seed,
		})
	case "d2":
		d1 := datagen.Coauthorship(datagen.CoauthorshipConfig{
			Authors: int(2000 * f), Edges: int(12000 * f), Years: 35,
			TicksPerYear: 10000, AttrsPerNode: 10, Seed: *seed,
		})
		events = datagen.Churn(d1, datagen.ChurnConfig{
			Adds: int(12000 * f), Dels: int(12000 * f), Ticks: 120000, Seed: *seed + 1,
		})
	case "d3":
		events = datagen.PatentLike(datagen.PatentLikeConfig{
			Nodes: int(6000 * f), Edges: int(20000 * f),
			ChurnAdds: int(25000 * f), ChurnDels: int(25000 * f), Seed: *seed,
		})
	case "const":
		events = datagen.ConstantRate(datagen.ConstantRateConfig{
			G0Nodes: int(400 * f), G0Edges: int(2000 * f), Events: int(8192 * f),
			DeltaStar: 0.45, RhoStar: 0.45, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "dggen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err := os.WriteFile(*out, delta.EncodeEvents(events), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dggen: %v\n", err)
		os.Exit(1)
	}
	first, last := events.Span()
	fmt.Printf("wrote %d events spanning [%d, %d] to %s\n", len(events), first, last, *out)
}
