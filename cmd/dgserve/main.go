// Command dgserve runs the concurrent snapshot query service: a long-lived
// Historical Graph Index process that many analysts hit over HTTP/JSON,
// with request coalescing and a hot-snapshot cache in front of the
// DeltaGraph.
//
// Serve an index previously built with dgload (read-mostly, plus live
// appends):
//
//	dgserve -addr :8086 -store /path/to/index
//
// Or start empty and ingest over the wire via POST /append:
//
//	dgserve -addr :8086 -L 4096 -k 3
//
// One binary also runs either role of a horizontally sharded cluster
// (internal/shard): partition workers are ordinary servers, each owning
// one hash slice of the node space, and a coordinator scatter-gathers
// across them:
//
//	dgserve -shard worker -addr :8186        # one per partition
//	dgserve -shard worker -addr :8187
//	dgserve -shard coordinator -addr :8086 \
//	        -peers http://h1:8186,http://h2:8187
//
// The order of -peers defines partition IDs: partition i must hold the
// events graph.PartitionOfEvent routes to i (appending through the
// coordinator maintains this automatically).
//
// Endpoints: /snapshot, /neighbors, /batch, /interval, /expr, /append,
// /stats, /healthz — see internal/server for parameters.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"historygraph"
	"historygraph/internal/server"
	"historygraph/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	store := flag.String("store", "", "index path prefix; loads an existing checkpoint if present, else creates")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "hot-snapshot cache capacity (0 disables)")
	leafSize := flag.Int("L", 0, "leaf eventlist size (new index only)")
	arity := flag.Int("k", 0, "DeltaGraph arity (new index only)")
	partitions := flag.Int("partitions", 0, "storage partitions (new index only); in -shard coordinator mode, expected number of peers")
	compress := flag.Bool("compress", false, "compress stored payloads (new index only)")
	checkpoint := flag.Bool("checkpoint", true, "checkpoint the index on shutdown when -store is set")
	role := flag.String("shard", "", `cluster role: "" or "worker" serve an index; "coordinator" scatter-gathers across -peers`)
	peers := flag.String("peers", "", "comma-separated partition base URLs (coordinator role only; order defines partition IDs)")
	peerTimeout := flag.Duration("peer-timeout", shard.DefaultPartitionTimeout, "per-partition fan-out timeout (coordinator role only)")
	flag.Parse()

	switch *role {
	case "coordinator", "coord":
		runCoordinator(*addr, *peers, *partitions, *peerTimeout)
		return
	case "", "worker", "single":
		// An index-serving process; a worker is just a server whose
		// GraphManager holds one partition's slice of the trace.
	default:
		fmt.Fprintf(os.Stderr, "dgserve: unknown -shard role %q (want worker or coordinator)\n", *role)
		os.Exit(2)
	}

	opts := historygraph.Options{
		LeafEventlistSize: *leafSize,
		Arity:             *arity,
		Partitions:        *partitions,
		Compress:          *compress,
		StorePath:         *store,
	}
	gm, loaded, err := open(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	}
	defer gm.Close()
	if loaded {
		st := gm.IndexStats()
		fmt.Printf("dgserve: loaded index from %s (%d leaves, %d interior nodes, last event t=%d)\n",
			*store, st.Leaves, st.InteriorNodes, gm.LastTime())
	} else {
		fmt.Println("dgserve: starting with an empty index (ingest via POST /append)")
	}

	size := *cacheSize
	if size <= 0 {
		size = -1 // disabled
	}
	svc := server.New(gm, server.Config{CacheSize: size})
	defer svc.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("dgserve: serving on %s (cache=%d)\n", *addr, *cacheSize)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("dgserve: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	svc.Close()
	if *store != "" && *checkpoint {
		if err := gm.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "dgserve: checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dgserve: checkpointed to %s\n", *store)
	}
}

// runCoordinator serves the scatter-gather front of a sharded cluster: no
// local index, every query fans out across the -peers partition servers
// and merges.
func runCoordinator(addr, peers string, expected int, timeout time.Duration) {
	var urls []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			urls = append(urls, p)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "dgserve: -shard coordinator requires -peers url1,url2,...")
		os.Exit(2)
	}
	if expected > 0 && expected != len(urls) {
		fmt.Fprintf(os.Stderr, "dgserve: -partitions %d but %d peers listed\n", expected, len(urls))
		os.Exit(2)
	}
	co, err := shard.New(urls, shard.Config{PartitionTimeout: timeout})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: addr, Handler: co.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("dgserve: coordinating %d partitions on %s (peer timeout %v)\n", len(urls), addr, timeout)
	for i, u := range urls {
		fmt.Printf("dgserve:   partition %d -> %s\n", i, u)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("dgserve: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
}

// open loads an existing checkpoint when the store file is present,
// otherwise creates a fresh (possibly persistent) index.
func open(opts historygraph.Options) (gm *historygraph.GraphManager, loaded bool, err error) {
	if opts.StorePath != "" {
		if _, statErr := os.Stat(opts.StorePath); statErr == nil {
			gm, err = historygraph.Load(opts)
			return gm, err == nil, err
		}
		if _, statErr := os.Stat(opts.StorePath + ".p0"); statErr == nil {
			gm, err = historygraph.Load(opts)
			return gm, err == nil, err
		}
	}
	gm, err = historygraph.Open(opts)
	return gm, false, err
}
