// Command dgserve runs the concurrent snapshot query service: a long-lived
// Historical Graph Index process that many analysts hit over HTTP/JSON,
// with request coalescing and a hot-snapshot cache in front of the
// DeltaGraph.
//
// Serve an index previously built with dgload (read-mostly, plus live
// appends):
//
//	dgserve -addr :8086 -store /path/to/index
//
// Or start empty and ingest over the wire via POST /append:
//
//	dgserve -addr :8086 -L 4096 -k 3
//
// Endpoints: /snapshot, /neighbors, /batch, /interval, /expr, /append,
// /stats, /healthz — see internal/server for parameters.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"historygraph"
	"historygraph/internal/server"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	store := flag.String("store", "", "index path prefix; loads an existing checkpoint if present, else creates")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "hot-snapshot cache capacity (0 disables)")
	leafSize := flag.Int("L", 0, "leaf eventlist size (new index only)")
	arity := flag.Int("k", 0, "DeltaGraph arity (new index only)")
	partitions := flag.Int("partitions", 0, "horizontal storage partitions (new index only)")
	compress := flag.Bool("compress", false, "compress stored payloads (new index only)")
	checkpoint := flag.Bool("checkpoint", true, "checkpoint the index on shutdown when -store is set")
	flag.Parse()

	opts := historygraph.Options{
		LeafEventlistSize: *leafSize,
		Arity:             *arity,
		Partitions:        *partitions,
		Compress:          *compress,
		StorePath:         *store,
	}
	gm, loaded, err := open(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	}
	defer gm.Close()
	if loaded {
		st := gm.IndexStats()
		fmt.Printf("dgserve: loaded index from %s (%d leaves, %d interior nodes, last event t=%d)\n",
			*store, st.Leaves, st.InteriorNodes, gm.LastTime())
	} else {
		fmt.Println("dgserve: starting with an empty index (ingest via POST /append)")
	}

	size := *cacheSize
	if size <= 0 {
		size = -1 // disabled
	}
	svc := server.New(gm, server.Config{CacheSize: size})
	defer svc.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("dgserve: serving on %s (cache=%d)\n", *addr, *cacheSize)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("dgserve: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	svc.Close()
	if *store != "" && *checkpoint {
		if err := gm.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "dgserve: checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dgserve: checkpointed to %s\n", *store)
	}
}

// open loads an existing checkpoint when the store file is present,
// otherwise creates a fresh (possibly persistent) index.
func open(opts historygraph.Options) (gm *historygraph.GraphManager, loaded bool, err error) {
	if opts.StorePath != "" {
		if _, statErr := os.Stat(opts.StorePath); statErr == nil {
			gm, err = historygraph.Load(opts)
			return gm, err == nil, err
		}
		if _, statErr := os.Stat(opts.StorePath + ".p0"); statErr == nil {
			gm, err = historygraph.Load(opts)
			return gm, err == nil, err
		}
	}
	gm, err = historygraph.Open(opts)
	return gm, false, err
}
