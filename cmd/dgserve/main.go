// Command dgserve runs the concurrent snapshot query service: a long-lived
// Historical Graph Index process that many analysts hit over HTTP/JSON,
// with request coalescing and a hot-snapshot cache in front of the
// DeltaGraph.
//
// Serve an index previously built with dgload (read-mostly, plus live
// appends):
//
//	dgserve -addr :8086 -store /path/to/index
//
// Or start empty and ingest over the wire via POST /append:
//
//	dgserve -addr :8086 -L 4096 -k 3
//
// With -wal-dir every append is written to a durable, CRC-checked
// write-ahead log and synced before it is acked; on restart the WAL
// replays and the process resumes exactly where its log ends:
//
//	dgserve -addr :8086 -wal-dir /var/lib/dg/wal
//
// One binary also runs either role of a horizontally sharded cluster
// (internal/shard): partition workers are ordinary servers, each owning
// one hash slice of the node space, and a coordinator scatter-gathers
// across them. With -wal-dir a worker is a replica-set member
// (internal/replica): the first URL of each "|"-separated peer group is
// the partition's initial primary, the rest are followers started with
// -primary, tailing the primary's WAL and applying events in order.
// -sync-followers 1 on the primary delays append acks until a follower
// has durably logged the batch, so promoting a follower after a primary
// failure loses no acked event — the coordinator health-checks members,
// spreads reads over in-sync replicas, and promotes the most-caught-up
// follower when a primary goes dark:
//
//	dgserve -shard worker -addr :8186 -wal-dir /d/p0a -sync-followers 1
//	dgserve -shard worker -addr :8286 -wal-dir /d/p0b -primary http://h1:8186
//	dgserve -shard worker -addr :8187 -wal-dir /d/p1a -sync-followers 1
//	dgserve -shard worker -addr :8287 -wal-dir /d/p1b -primary http://h1:8187
//	dgserve -shard coordinator -addr :8086 -replicas 2 \
//	        -peers "http://h1:8186|http://h2:8286,http://h1:8187|http://h2:8287"
//
// The order of -peers defines partition IDs: partition i must hold the
// events graph.PartitionOfEvent routes to i (appending through the
// coordinator maintains this automatically).
//
// Endpoints: /snapshot, /neighbors, /batch, /interval, /expr, /append,
// /stats, /healthz, /readyz, /metrics — see internal/server for
// parameters — plus, on WAL-backed workers, /replicate, /replstatus and
// /role (internal/replica). /metrics serves Prometheus text exposition on
// every role; /healthz is pure liveness while /readyz reflects readiness
// (replica catch-up state on WAL-backed nodes, member reachability on a
// coordinator).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"historygraph"
	"historygraph/internal/replica"
	"historygraph/internal/server"
	"historygraph/internal/shard"
	"historygraph/internal/wire"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	store := flag.String("store", "", "index path prefix; loads an existing checkpoint if present, else creates")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "hot-snapshot cache capacity (0 disables); in coordinator role, the merged-response cache capacity")
	leafSize := flag.Int("L", 0, "leaf eventlist size (new index only)")
	arity := flag.Int("k", 0, "DeltaGraph arity (new index only)")
	partitions := flag.Int("partitions", 0, "storage partitions (new index only); in -shard coordinator mode, expected number of peer groups")
	compress := flag.Bool("compress", false, "compress stored payloads (new index only)")
	checkpoint := flag.Bool("checkpoint", true, "checkpoint the index on shutdown when -store is set")
	role := flag.String("shard", "", `cluster role: "" or "worker" serve an index; "coordinator" scatter-gathers across -peers`)
	peers := flag.String("peers", "", `comma-separated partition peer groups (coordinator role only; order defines partition IDs, "|" separates a group's replicas, first replica is the initial primary)`)
	peerTimeout := flag.Duration("peer-timeout", shard.DefaultPartitionTimeout, "per-partition fan-out timeout (coordinator role only)")
	replicas := flag.Int("replicas", 0, "expected replicas per partition (coordinator role only; validates -peers)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "replica health-check period (coordinator role only; 0 disables)")
	cacheTTL := flag.Duration("cache-ttl", 0, "max age of a merged-response cache entry (coordinator role only; 0 keeps entries until an append through this coordinator invalidates them — set when writers can reach partition primaries directly)")
	wireName := flag.String("wire", "json", `codec for this process's outbound data-plane requests: "json" (default) or "binary"; in coordinator role it selects the scatter-leg encoding (external responses negotiate per request via Accept and are byte-identical either way)`)
	streamRun := flag.Int("stream-run", 0, "elements per chunked-stream frame on the streaming /snapshot path; peak response-build memory is proportional to it (0 picks the wire default, 2048)")
	streamTimeout := flag.Duration("stream-timeout", 0, "total delivery bound for one merged snapshot stream (coordinator role; client-paced, so much larger than -peer-timeout; 0 picks 20x -peer-timeout)")
	encCache := flag.Int("enc-cache", server.DefaultEncodedCacheSize, "encoded-bytes cache capacity: fully encoded /snapshot bodies served with zero re-encode on a hit (0 disables; worker/single role only)")
	csrCache := flag.Int("csr-cache", server.DefaultCSRCacheSize, "materialized CSR snapshot cache capacity for the /analytics scan path (0 disables; worker/single role only)")
	walDir := flag.String("wal-dir", "", "directory for the durable write-ahead event log; enables WAL durability and the replication endpoints")
	primary := flag.String("primary", "", "base URL of this replica's primary; makes the node a follower tailing that WAL (requires -wal-dir)")
	syncFollowers := flag.Int("sync-followers", 0, "followers that must durably log a batch before the primary acks the append (requires -wal-dir)")
	slowQuery := flag.Duration("slow-query", 0, "log any request slower than this with its X-Request-ID and annotations (0 disables the slow-query log)")
	readyMaxLag := flag.Uint64("ready-max-lag", 0, "WAL records a follower may trail its primary and still answer GET /readyz with 200 (requires -wal-dir; 0 requires full catch-up)")
	appendQueue := flag.Int("append-queue", 0, "admitted-but-unapplied batches the append pipeline holds before admission blocks (requires -wal-dir; 0 picks the default)")
	appendStreamWindow := flag.Int("append-stream-window", 0, "in-flight frames one streaming ingest connection may hold before the handler stops reading (requires -wal-dir; 0 picks the default)")
	flag.Parse()

	if _, err := wire.ByName(*wireName); err != nil {
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(2)
	}

	switch *role {
	case "coordinator", "coord":
		runCoordinator(*addr, *peers, *partitions, *replicas, *peerTimeout, *healthInterval, *cacheSize, *cacheTTL, *wireName, *streamRun, *streamTimeout, *slowQuery)
		return
	case "", "worker", "single":
		// An index-serving process; a worker is just a server whose
		// GraphManager holds one partition's slice of the trace.
	default:
		fmt.Fprintf(os.Stderr, "dgserve: unknown -shard role %q (want worker or coordinator)\n", *role)
		os.Exit(2)
	}
	if *walDir == "" && (*primary != "" || *syncFollowers > 0) {
		fmt.Fprintln(os.Stderr, "dgserve: -primary and -sync-followers require -wal-dir")
		os.Exit(2)
	}

	opts := historygraph.Options{
		LeafEventlistSize: *leafSize,
		Arity:             *arity,
		Partitions:        *partitions,
		Compress:          *compress,
		StorePath:         *store,
	}
	gm, loaded, err := open(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	}
	defer gm.Close()
	if loaded {
		st := gm.IndexStats()
		fmt.Printf("dgserve: loaded index from %s (%d leaves, %d interior nodes, last event t=%d)\n",
			*store, st.Leaves, st.InteriorNodes, gm.LastTime())
	} else {
		fmt.Println("dgserve: starting with an empty index (ingest via POST /append)")
	}

	size := *cacheSize
	if size <= 0 {
		size = -1 // disabled
	}
	encSize := *encCache
	if encSize <= 0 {
		encSize = -1 // disabled
	}
	csrSize := *csrCache
	if csrSize <= 0 {
		csrSize = -1 // disabled
	}
	svc := server.New(gm, server.Config{CacheSize: size, EncodedCacheSize: encSize, CSRCacheSize: csrSize, StreamRun: *streamRun, SlowQueryThreshold: *slowQuery})
	defer svc.Close()

	handler := svc.Handler()
	var node *replica.Node
	var wal *replica.Log
	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
			os.Exit(1)
		}
		wal, err = replica.OpenLog(filepath.Join(*walDir, "wal.log"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
			os.Exit(1)
		}
		defer wal.Close()
		// The ack identity must be unique per node across the whole
		// replica set; a bare listen address like ":8086" repeats on
		// every host, which would collapse distinct followers into one
		// ack-table entry and starve -sync-followers waits.
		selfID := *addr
		if hn, herr := os.Hostname(); herr == nil {
			selfID = hn + selfID
		}
		cfg := replica.Config{
			SyncFollowers: *syncFollowers, SelfID: selfID, ReadyMaxLag: *readyMaxLag,
			AppendQueue: *appendQueue, StreamWindow: *appendStreamWindow,
			// The manager factory enables automated truncate-and-resync: a
			// follower whose WAL diverged from its primary re-seeds itself
			// instead of waiting for an operator to wipe the WAL directory.
			NewManager: func() (*historygraph.GraphManager, error) {
				return historygraph.Open(opts)
			},
		}
		if *primary != "" {
			cfg.Role = replica.RoleFollower
			cfg.PrimaryURL = *primary
		}
		node, err = replica.NewNode(svc, wal, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
			os.Exit(1)
		}
		defer node.Close()
		handler = node.Handler()
		fmt.Printf("dgserve: WAL at %s (%d events logged, role %s)\n",
			*walDir, wal.LastSeq(), node.Role())
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("dgserve: serving on %s (cache=%d)\n", *addr, *cacheSize)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("dgserve: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if node != nil {
		node.Close()
	}
	svc.Close()
	if *store != "" && *checkpoint {
		if err := gm.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "dgserve: checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dgserve: checkpointed to %s\n", *store)
	}
}

// runCoordinator serves the scatter-gather front of a sharded cluster: no
// local index, every query fans out across the -peers partition replica
// sets and merges.
func runCoordinator(addr, peers string, expected, replicas int, timeout, healthInterval time.Duration, cacheSize int, cacheTTL time.Duration, wireName string, streamRun int, streamTimeout, slowQuery time.Duration) {
	// shard.New owns the peer-spec grammar ("," between partitions, "|"
	// between a partition's replicas); this just splits the flag.
	var specs []string
	for _, group := range strings.Split(peers, ",") {
		if group = strings.TrimSpace(group); group != "" {
			specs = append(specs, group)
		}
	}
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, `dgserve: -shard coordinator requires -peers "url1|url1b,url2|url2b,..."`)
		os.Exit(2)
	}
	if expected > 0 && expected != len(specs) {
		fmt.Fprintf(os.Stderr, "dgserve: -partitions %d but %d peer groups listed\n", expected, len(specs))
		os.Exit(2)
	}
	if cacheSize <= 0 {
		cacheSize = -1 // disabled
	}
	co, err := shard.New(specs, shard.Config{
		PartitionTimeout:   timeout,
		HealthInterval:     healthInterval,
		CacheSize:          cacheSize,
		CacheTTL:           cacheTTL,
		Wire:               wireName,
		StreamRun:          streamRun,
		StreamTimeout:      streamTimeout,
		SlowQueryThreshold: slowQuery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	}
	defer co.Close()
	for p := 0; p < co.NumPartitions(); p++ {
		if set := co.Members(p); replicas > 0 && replicas != len(set) {
			fmt.Fprintf(os.Stderr, "dgserve: -replicas %d but partition %d lists %d members\n", replicas, p, len(set))
			os.Exit(2)
		}
	}
	httpSrv := &http.Server{Addr: addr, Handler: co.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("dgserve: coordinating %d partitions on %s (peer timeout %v, health interval %v)\n",
		co.NumPartitions(), addr, timeout, healthInterval)
	for p := 0; p < co.NumPartitions(); p++ {
		set := co.Members(p)
		if len(set) == 1 {
			fmt.Printf("dgserve:   partition %d -> %s\n", p, set[0])
		} else {
			fmt.Printf("dgserve:   partition %d -> primary %s, replicas %s\n", p, set[0], strings.Join(set[1:], " "))
		}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dgserve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("dgserve: %v, shutting down\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	co.Close()
}

// open loads an existing checkpoint when the store file is present,
// otherwise creates a fresh (possibly persistent) index.
func open(opts historygraph.Options) (gm *historygraph.GraphManager, loaded bool, err error) {
	if opts.StorePath != "" {
		if _, statErr := os.Stat(opts.StorePath); statErr == nil {
			gm, err = historygraph.Load(opts)
			return gm, err == nil, err
		}
		if _, statErr := os.Stat(opts.StorePath + ".p0"); statErr == nil {
			gm, err = historygraph.Load(opts)
			return gm, err == nil, err
		}
	}
	gm, err = historygraph.Open(opts)
	return gm, false, err
}
