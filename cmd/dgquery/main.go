// Command dgquery retrieves historical snapshots from an index built by
// dgload and prints summary statistics (or the full element list with -v).
//
// Usage:
//
//	dgquery -store /path/to/index -t 12345 [-attrs "+node:all"] [-v]
//	dgquery -store /path/to/index -t 100,200,300        # multipoint
//	dgquery -store /path/to/index -interval 100:900     # interval query
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"historygraph"
)

func main() {
	store := flag.String("store", "", "index path prefix (required)")
	ts := flag.String("t", "", "query timepoint(s), comma separated")
	interval := flag.String("interval", "", "interval query ts:te")
	attrs := flag.String("attrs", "", "attr_options string (Table 1 syntax)")
	verbose := flag.Bool("v", false, "print elements, not just counts")
	flag.Parse()
	if *store == "" || (*ts == "" && *interval == "") {
		fmt.Fprintln(os.Stderr, "dgquery: -store and one of -t/-interval are required")
		os.Exit(2)
	}
	gm, err := historygraph.Load(historygraph.Options{StorePath: *store})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgquery: %v\n", err)
		os.Exit(1)
	}
	defer gm.Close()

	if *interval != "" {
		lo, hi, ok := strings.Cut(*interval, ":")
		if !ok {
			fmt.Fprintln(os.Stderr, "dgquery: -interval wants ts:te")
			os.Exit(2)
		}
		tsv, err1 := strconv.ParseInt(lo, 10, 64)
		tev, err2 := strconv.ParseInt(hi, 10, 64)
		if err1 != nil || err2 != nil {
			fmt.Fprintln(os.Stderr, "dgquery: bad interval bounds")
			os.Exit(2)
		}
		res, err := gm.GetHistGraphInterval(historygraph.Time(tsv), historygraph.Time(tev), *attrs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgquery: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("interval [%d, %d): %d nodes, %d edges added; %d transient events\n",
			tsv, tev, len(res.Graph.Nodes), len(res.Graph.Edges), len(res.Transients))
		return
	}

	var times []historygraph.Time
	for _, part := range strings.Split(*ts, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgquery: bad timepoint %q\n", part)
			os.Exit(2)
		}
		times = append(times, historygraph.Time(v))
	}
	graphs, err := gm.GetHistGraphs(times, *attrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgquery: %v\n", err)
		os.Exit(1)
	}
	for i, h := range graphs {
		fmt.Printf("t=%d: %d nodes, %d edges\n", times[i], h.NumNodes(), h.NumEdges())
		if *verbose {
			nodes := h.Nodes()
			sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
			for _, n := range nodes {
				fmt.Printf("  node %d attrs=%v neighbors=%v\n", n, h.NodeAttrs(n), h.Neighbors(n))
			}
		}
	}
}
