// Command dgquery retrieves historical snapshots and prints summary
// statistics (or the full element list with -v). It works against a local
// index built by dgload, or — with -remote — against a running dgserve
// instance over HTTP.
//
// Usage:
//
//	dgquery -store /path/to/index -t 12345 [-attrs "+node:all"] [-v]
//	dgquery -store /path/to/index -t 100,200,300        # multipoint
//	dgquery -store /path/to/index -interval 100:900     # interval query
//	dgquery -remote http://localhost:8086 -t 12345 [-v] # query a dgserve
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"historygraph"
	"historygraph/internal/server"
)

func main() {
	store := flag.String("store", "", "index path prefix (local mode)")
	remote := flag.String("remote", "", "dgserve base URL, e.g. http://localhost:8086 (remote mode)")
	ts := flag.String("t", "", "query timepoint(s), comma separated")
	interval := flag.String("interval", "", "interval query ts:te")
	attrs := flag.String("attrs", "", "attr_options string (Table 1 syntax)")
	verbose := flag.Bool("v", false, "print elements, not just counts")
	wireName := flag.String("wire", "json", `wire codec for -remote requests: "json", "binary", or "stream" (binary with chunked full-snapshot responses decoded incrementally)`)
	flag.Parse()
	if (*store == "") == (*remote == "") || (*ts == "" && *interval == "") {
		fmt.Fprintln(os.Stderr, "dgquery: exactly one of -store/-remote plus one of -t/-interval are required")
		os.Exit(2)
	}

	if *remote != "" {
		if err := runRemote(*remote, *ts, *interval, *attrs, *verbose, *wireName); err != nil {
			fmt.Fprintf(os.Stderr, "dgquery: %v\n", err)
			os.Exit(1)
		}
		return
	}

	gm, err := historygraph.Load(historygraph.Options{StorePath: *store})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgquery: %v\n", err)
		os.Exit(1)
	}
	defer gm.Close()

	if *interval != "" {
		tsv, tev, err := parseInterval(*interval)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgquery: %v\n", err)
			os.Exit(2)
		}
		res, err := gm.GetHistGraphInterval(tsv, tev, *attrs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgquery: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("interval [%d, %d): %d nodes, %d edges added; %d transient events\n",
			tsv, tev, len(res.Graph.Nodes), len(res.Graph.Edges), len(res.Transients))
		return
	}

	times, err := parseTimes(*ts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgquery: %v\n", err)
		os.Exit(2)
	}
	graphs, err := gm.GetHistGraphs(times, *attrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgquery: %v\n", err)
		os.Exit(1)
	}
	for i, h := range graphs {
		fmt.Printf("t=%d: %d nodes, %d edges\n", times[i], h.NumNodes(), h.NumEdges())
		if *verbose {
			nodes := h.Nodes()
			sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
			for _, n := range nodes {
				fmt.Printf("  node %d attrs=%v neighbors=%v\n", n, h.NodeAttrs(n), h.Neighbors(n))
			}
		}
	}
}

// runRemote answers the same queries through a dgserve instance.
func runRemote(base, ts, interval, attrs string, verbose bool, wireName string) error {
	c, err := server.NewClient(base).SetWire(wireName)
	if err != nil {
		return err
	}

	if interval != "" {
		tsv, tev, err := parseInterval(interval)
		if err != nil {
			return err
		}
		res, err := c.Interval(tsv, tev, attrs, false)
		if err != nil {
			return err
		}
		fmt.Printf("interval [%d, %d): %d nodes, %d edges added; %d transient events\n",
			res.Start, res.End, res.NumNodes, res.NumEdges, len(res.Transients))
		return nil
	}

	times, err := parseTimes(ts)
	if err != nil {
		return err
	}
	var snaps []server.SnapshotJSON
	if len(times) == 1 {
		snap, err := c.Snapshot(times[0], attrs, verbose)
		if err != nil {
			return err
		}
		snaps = []server.SnapshotJSON{*snap}
	} else {
		if snaps, err = c.Snapshots(times, attrs, verbose); err != nil {
			return err
		}
	}
	for _, snap := range snaps {
		extra := ""
		if snap.Cached {
			extra = " (cached)"
		}
		fmt.Printf("t=%d: %d nodes, %d edges%s\n", snap.At, snap.NumNodes, snap.NumEdges, extra)
		if verbose {
			adj := make(map[int64][]int64)
			for _, e := range snap.Edges {
				adj[e.From] = append(adj[e.From], e.To)
				if e.To != e.From {
					adj[e.To] = append(adj[e.To], e.From)
				}
			}
			for _, n := range snap.Nodes {
				fmt.Printf("  node %d attrs=%v neighbors=%v\n", n.ID, n.Attrs, adj[n.ID])
			}
		}
	}
	return nil
}

func parseTimes(s string) ([]historygraph.Time, error) {
	var times []historygraph.Time
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad timepoint %q", part)
		}
		times = append(times, historygraph.Time(v))
	}
	return times, nil
}

func parseInterval(s string) (historygraph.Time, historygraph.Time, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-interval wants ts:te")
	}
	tsv, err1 := strconv.ParseInt(lo, 10, 64)
	tev, err2 := strconv.ParseInt(hi, 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad interval bounds %q", s)
	}
	return historygraph.Time(tsv), historygraph.Time(tev), nil
}
