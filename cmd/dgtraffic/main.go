// Command dgtraffic is the closed-loop cluster load harness: it drives
// a scenario-declared request mix (internal/loadgen) against a running
// coordinator — or a cluster it launches itself — and reports
// per-endpoint latency quantiles, achieved-vs-target throughput, and
// error accounting cross-checked against the cluster's own /metrics.
//
// Launch a 2-partition × 2-replica cluster in-process, preload it, and
// run the smoke scenario (what CI's loadtest job does):
//
//	dgtraffic -launch 2x2 -scenario examples/loadtest/smoke.json \
//	    -out load-result.json -record load-record.json
//
// Attach to an already-running coordinator instead (the scenario must
// then pin time_max/node_max, and chaos events are rejected — there is
// no process handle to kill):
//
//	dgtraffic -target http://localhost:8086 -scenario mix.json
//
// The -out artifact is the full loadgen.Result JSON; -record writes the
// benchmark-style projection (throughput in rps, per-endpoint p50/p99
// in ms, each tagged with its unit) that cmd/benchdiff merges into the
// BENCH_*.json trajectory and compares direction-aware across runs.
//
// Validate scenario files without running anything (CI lints every
// committed scenario this way):
//
//	dgtraffic -validate examples/loadtest/*.json
//
// Exit status: 0 on a clean run, 1 when the gate trips (any non-chaos
// error, an endpoint left with an empty histogram, or a failed
// client-vs-server consistency check), 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"historygraph/internal/loadgen"
)

func main() {
	scenarioPath := flag.String("scenario", "", "scenario JSON file (required)")
	target := flag.String("target", "", "attach to a running coordinator/server at this base URL")
	launch := flag.String("launch", "", `launch an in-process cluster shaped "PxR" (e.g. "2x2") instead of attaching`)
	preload := flag.Int("preload", 0, "launch mode: authors in the preloaded trace (0 picks the default, 500; edges scale 3x)")
	wire := flag.String("wire", "", "override the scenario's wire selection (json, binary, stream)")
	out := flag.String("out", "", "write the full result JSON here")
	record := flag.String("record", "", "write the benchmark-record projection (BENCH_*.json family) here")
	note := flag.String("note", "", "provenance note stored in the -record file")
	gate := flag.Bool("gate", true, "exit 1 on non-chaos errors, empty histograms, or a failed server cross-check")
	validate := flag.Bool("validate", false, "parse and validate the scenario files given as arguments, then exit")
	flag.Parse()

	if *validate {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "dgtraffic: -validate wants scenario files as arguments")
			os.Exit(2)
		}
		bad := false
		for _, path := range flag.Args() {
			sc, err := loadgen.LoadScenario(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dgtraffic: %v\n", err)
				bad = true
				continue
			}
			fmt.Printf("%s: ok — %s\n", path, sc)
		}
		if bad {
			os.Exit(1)
		}
		return
	}

	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "dgtraffic: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}
	if (*target == "") == (*launch == "") {
		fmt.Fprintln(os.Stderr, "dgtraffic: exactly one of -target or -launch is required")
		os.Exit(2)
	}
	sc, err := loadgen.LoadScenario(*scenarioPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgtraffic: %v\n", err)
		os.Exit(2)
	}
	if *wire != "" {
		sc.Wire = *wire
		if err := sc.Normalize(); err != nil {
			fmt.Fprintf(os.Stderr, "dgtraffic: %v\n", err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := loadgen.Options{
		Target: *target,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if *launch != "" {
		p, r, err := parseShape(*launch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgtraffic: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("dgtraffic: launching a %dx%d cluster...\n", p, r)
		cluster, err := loadgen.LaunchCluster(loadgen.ClusterConfig{
			Partitions: p, Replicas: r,
			PreloadAuthors: *preload,
			Seed:           sc.Seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgtraffic: launch: %v\n", err)
			os.Exit(1)
		}
		defer cluster.Close()
		opts.Target = cluster.URL()
		opts.Chaos = cluster
		opts.TimeMax = cluster.TimeMax()
		opts.NodeMax = cluster.NodeMax()
		fmt.Printf("dgtraffic: cluster on %s, preloaded history to t=%d\n", cluster.URL(), cluster.TimeMax())
		defer func() {
			if n := cluster.Coordinator().Failovers(); n > 0 {
				fmt.Printf("dgtraffic: coordinator ran %d failover(s) during the run\n", n)
			}
		}()
	}

	res, err := loadgen.Run(ctx, sc, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgtraffic: %v\n", err)
		os.Exit(1)
	}
	printSummary(res)

	if *out != "" {
		if err := writeJSON(*out, res); err != nil {
			fmt.Fprintf(os.Stderr, "dgtraffic: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dgtraffic: wrote result to %s\n", *out)
	}
	if *record != "" {
		benchmarks, units := res.BenchRecord()
		rec := struct {
			Note       string             `json:"note,omitempty"`
			Benchmarks map[string]float64 `json:"benchmarks"`
			Units      map[string]string  `json:"units,omitempty"`
		}{Note: *note, Benchmarks: benchmarks, Units: units}
		if err := writeJSON(*record, rec); err != nil {
			fmt.Fprintf(os.Stderr, "dgtraffic: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("dgtraffic: wrote benchmark record to %s\n", *record)
	}

	if *gate {
		if err := res.GateErrors(); err != nil {
			fmt.Fprintf(os.Stderr, "dgtraffic: GATE FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("dgtraffic: gate ok (no non-chaos errors, every endpoint measured)")
	}
}

func parseShape(s string) (p, r int, err error) {
	if _, err := fmt.Sscanf(strings.ToLower(s), "%dx%d", &p, &r); err != nil {
		return 0, 0, fmt.Errorf(`-launch wants "PxR" (e.g. "2x2"), got %q`, s)
	}
	if p < 1 || r < 1 {
		return 0, 0, fmt.Errorf("-launch %q: partitions and replicas must be positive", s)
	}
	return p, r, nil
}

func printSummary(res *loadgen.Result) {
	fmt.Printf("\n%s against %s (%s, wire %s, %d clients)\n",
		res.Scenario, res.Target, res.Mode, res.Wire, res.Clients)
	if res.TargetRPS > 0 {
		fmt.Printf("throughput: %.1f rps achieved of %.1f targeted (%.1f%%) over %.1fs\n",
			res.AchievedRPS, res.TargetRPS, 100*res.AchievedRPS/res.TargetRPS, res.MeasureSeconds)
	} else {
		fmt.Printf("throughput: %.1f rps over %.1fs (unpaced)\n", res.AchievedRPS, res.MeasureSeconds)
	}
	fmt.Printf("requests: %d ok, %d errors, %d chaos-window errors, %d partial answers\n",
		res.Requests-res.Errors-res.ChaosErrors, res.Errors, res.ChaosErrors, res.Partials)
	if res.ScheduleLag > 0 {
		fmt.Printf("open-loop schedule slipped %d slots (server slower than the offered rate)\n", res.ScheduleLag)
	}
	names := make([]string, 0, len(res.Endpoints))
	for name := range res.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-10s %9s %8s %8s %8s %8s %8s %8s\n",
		"endpoint", "count", "mean", "p50", "p90", "p99", "p999", "max")
	for _, name := range names {
		ep := res.Endpoints[name]
		fmt.Printf("%-10s %9d %7.2fm %7.2fm %7.2fm %7.2fm %7.2fm %7.2fm\n",
			name, ep.Count, ep.MeanMs, ep.P50Ms, ep.P90Ms, ep.P99Ms, ep.P999Ms, ep.MaxMs)
	}
	for _, name := range names {
		for _, sample := range res.Endpoints[name].ErrorSamples {
			fmt.Printf("error sample (%s): %s\n", name, sample)
		}
	}
	for _, desc := range res.ChaosApplied {
		fmt.Printf("chaos applied: %s\n", desc)
	}
	if sc := res.Server; sc != nil {
		if sc.Scraped {
			state := "consistent"
			if !sc.Consistent {
				state = "INCONSISTENT"
			}
			fmt.Printf("server /metrics: %d 2xx requests vs %d client-measured (%s); server-side p50 %.2fms p99 %.2fms\n",
				sc.Requests2xx, sc.ClientMeasured, state, sc.P50Ms, sc.P99Ms)
		} else {
			fmt.Printf("server /metrics: not scraped (%s)\n", sc.Note)
		}
	}
	fmt.Println()
}

func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
