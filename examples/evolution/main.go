// Evolution reproduces the paper's Figure 1 workload: retrieve yearly
// snapshots of a growing co-authorship network (one multipoint query) and
// track how the PageRank ranks of the eventually-top authors evolved.
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"

	"historygraph"
	"historygraph/internal/analytics"
	"historygraph/internal/datagen"
	"historygraph/internal/graph"
)

func main() {
	// A DBLP-like growing-only trace: authors join and co-author over 20
	// "years", with super-linear event density.
	const ticksPerYear = 1000
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 800, Edges: 5000, Years: 20,
		TicksPerYear: ticksPerYear, AttrsPerNode: 2, Seed: 9,
	})
	gm, err := historygraph.BuildFrom(events, historygraph.Options{
		LeafEventlistSize: 500, Arity: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gm.Close()

	// One multipoint query fetches every year-end snapshot.
	var years []historygraph.Time
	for y := 10; y <= 20; y++ {
		years = append(years, historygraph.Time(y*ticksPerYear-1))
	}
	graphs, err := gm.GetHistGraphs(years, "")
	if err != nil {
		log.Fatal(err)
	}

	// PageRank per snapshot; remember each author's rank.
	ranksPerYear := make([]map[graph.NodeID]int, len(graphs))
	for i, h := range graphs {
		ranksPerYear[i] = analytics.RankOf(analytics.PageRank(h, 0.85, 15))
	}

	// The top 5 authors of the final year, tracked back in time.
	final := ranksPerYear[len(ranksPerYear)-1]
	var top []graph.NodeID
	for id, r := range final {
		if r <= 5 {
			top = append(top, id)
		}
	}
	fmt.Print("author")
	for y := 10; y <= 20; y++ {
		fmt.Printf("%8s", fmt.Sprintf("y%d", y))
	}
	fmt.Println()
	for _, id := range top {
		fmt.Printf("%-6d", id)
		for i := range years {
			if r, ok := ranksPerYear[i][id]; ok {
				fmt.Printf("%8d", r)
			} else {
				fmt.Printf("%8s", "-")
			}
		}
		fmt.Println()
	}
	fmt.Println("\n(rank 1 = highest PageRank; '-' = author not yet in the network)")
}
