// Patternmatch demonstrates the extensibility API of Section 4.7: a
// length-4 path index over a node-labeled graph is maintained historically
// inside the DeltaGraph, and a subgraph pattern is matched at several time
// points without rescanning the graph.
//
//	go run ./examples/patternmatch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"historygraph/internal/auxindex"
	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"
)

func main() {
	// A labeled random graph trace: labels drawn from {gene, protein,
	// site} — think of a small interaction network growing over time.
	labels := []string{"gene", "protein", "site"}
	rng := rand.New(rand.NewSource(10))
	var events graph.EventList
	now := graph.Time(0)
	const nodes = 60
	for i := 1; i <= nodes; i++ {
		now++
		events = append(events,
			graph.Event{Type: graph.AddNode, At: now, Node: graph.NodeID(i)},
			graph.Event{Type: graph.SetNodeAttr, At: now, Node: graph.NodeID(i),
				Attr: "label", New: labels[rng.Intn(len(labels))], HasNew: true})
	}
	for e := 1; e <= 200; e++ {
		now++
		u := graph.NodeID(rng.Intn(nodes) + 1)
		v := graph.NodeID(rng.Intn(nodes) + 1)
		if u == v {
			continue
		}
		events = append(events, graph.Event{Type: graph.AddEdge, At: now, Edge: graph.EdgeID(e), Node: u, Node2: v})
	}

	// Register the path index at build time; it is maintained and
	// versioned automatically alongside the graph.
	idx := auxindex.NewPathIndex("label")
	dg, err := deltagraph.Build(events, deltagraph.Options{
		LeafSize: 64, Arity: 4,
		AuxIndexes: []deltagraph.AuxIndex{idx},
	})
	if err != nil {
		log.Fatal(err)
	}
	matcher := &auxindex.Matcher{DG: dg, Index: idx}

	// The pattern: gene - protein - protein - site (a path pattern; any
	// connected pattern with >= 4 nodes on a path works).
	pattern := &auxindex.Pattern{
		Labels: map[graph.NodeID]string{1: "gene", 2: "protein", 3: "protein", 4: "site"},
		Edges:  [][2]graph.NodeID{{1, 2}, {2, 3}, {3, 4}},
	}
	for _, t := range []graph.Time{now / 4, now / 2, now} {
		matches, err := matcher.Match(t, pattern)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-4d  gene-protein-protein-site occurrences: %d\n", t, len(matches))
		for i, m := range matches {
			if i == 3 {
				fmt.Println("         ...")
				break
			}
			fmt.Printf("         %v\n", m)
		}
	}

	// Whole-history count, one snapshot per leaf (the paper's 14109-match
	// style of query).
	total, err := matcher.MatchHistory(dg.LeafTimes(), pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matches summed over all %d leaf snapshots: %d\n", len(dg.LeafTimes()), total)
}
