// Replicated: run a 2-partition × 2-replica snapshot-service cluster
// in-process — every partition worker appends to a durable write-ahead
// log before acking, followers tail their primary's WAL, and the
// coordinator spreads reads across replicas — then walk the two failure
// drills the subsystem exists for:
//
//  1. kill a worker and restart it over its WAL (replay + catch-up), and
//
//  2. kill a primary, keep appending (the coordinator promotes the
//     caught-up follower), and verify the merged answers still match an
//     unsharded server over the same event log.
//
//     go run ./examples/replicated
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"historygraph"
	"historygraph/internal/datagen"
	"historygraph/internal/replica"
	"historygraph/internal/server"
	"historygraph/internal/shard"
)

const partitions = 2

// worker is one replica-set member: server + WAL + replication node on a
// fixed address, so a "restarted process" keeps its URL.
type worker struct {
	gm      *historygraph.GraphManager
	svc     *server.Server
	wal     *replica.Log
	node    *replica.Node
	httpSrv *http.Server
	addr    string
	url     string
}

func startWorker(walPath, addr string, cfg replica.Config) (*worker, error) {
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 256})
	if err != nil {
		return nil, err
	}
	svc := server.New(gm, server.Config{CacheSize: 8})
	wal, err := replica.OpenLog(walPath)
	if err != nil {
		return nil, err
	}
	node, err := replica.NewNode(svc, wal, cfg)
	if err != nil {
		return nil, err
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
	w := &worker{
		gm: gm, svc: svc, wal: wal, node: node,
		httpSrv: &http.Server{Handler: node.Handler()},
		addr:    ln.Addr().String(),
		url:     "http://" + ln.Addr().String(),
	}
	go w.httpSrv.Serve(ln)
	return w, nil
}

func (w *worker) stop() {
	w.httpSrv.Close()
	w.node.Close()
	w.svc.Close()
	w.wal.Close()
	w.gm.Close()
}

func waitCaughtUp(url string, seq uint64) {
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		st, err := replica.Status(context.Background(), http.DefaultClient, url)
		if err == nil && st.AppliedSeq >= seq {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatalf("%s never caught up to seq %d", url, seq)
}

func main() {
	dir, err := os.MkdirTemp("", "dg-replicated")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	walPath := func(p, r int) string { return filepath.Join(dir, fmt.Sprintf("p%d-r%d.wal", p, r)) }

	// Each partition: a primary that acks only after its follower has
	// durably logged the batch, plus that follower tailing it.
	primaries := make([]*worker, partitions)
	followers := make([]*worker, partitions)
	sets := make([][]string, partitions)
	for p := 0; p < partitions; p++ {
		if primaries[p], err = startWorker(walPath(p, 0), "", replica.Config{
			Role: replica.RolePrimary, SyncFollowers: 1,
		}); err != nil {
			log.Fatal(err)
		}
		defer primaries[p].stop()
		if followers[p], err = startWorker(walPath(p, 1), "", replica.Config{
			Role: replica.RoleFollower, PrimaryURL: primaries[p].url,
		}); err != nil {
			log.Fatal(err)
		}
		defer followers[p].stop()
		sets[p] = []string{primaries[p].url, followers[p].url}
		fmt.Printf("partition %d: primary %s, follower %s\n", p, primaries[p].url, followers[p].url)
	}

	co, err := shard.NewReplicated(sets, shard.Config{
		PartitionTimeout: 5 * time.Second,
		HealthInterval:   250 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer co.Close()
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	fmt.Printf("coordinator serving on %s\n\n", front.URL)

	// Ingest through the coordinator: every acked batch is on two disks
	// per partition before the ack leaves the primary.
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 300, Edges: 900, Years: 5, AttrsPerNode: 2, Seed: 7,
	})
	client := server.NewClient(front.URL)
	res, err := client.Append(events)
	if err != nil {
		log.Fatal(err)
	}
	last := historygraph.Time(res.LastTime)
	fmt.Printf("appended %d events (each synced to a WAL and replicated before ack), history ends at t=%d\n",
		res.Appended, last)

	// The unsharded oracle over the same trace.
	ogm, err := historygraph.BuildFrom(events, historygraph.Options{LeafEventlistSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer ogm.Close()
	check := func(stage string, tp historygraph.Time) {
		merged, err := client.Snapshot(tp, "+node:all", false)
		if err != nil {
			log.Fatalf("[%s] %v", stage, err)
		}
		direct, err := ogm.GetHistSnapshot(tp, "+node:all")
		if err != nil {
			log.Fatal(err)
		}
		status := "MATCHES"
		if merged.NumNodes != len(direct.Nodes) || merged.NumEdges != len(direct.Edges) || len(merged.Partial) != 0 {
			status = "DIVERGED"
		}
		fmt.Printf("[%s] snapshot t=%d: cluster %d nodes / %d edges, oracle %d / %d — %s\n",
			stage, int64(tp), merged.NumNodes, merged.NumEdges, len(direct.Nodes), len(direct.Edges), status)
		if status == "DIVERGED" {
			log.Fatal("replicated cluster diverged from the unsharded oracle")
		}
	}
	check("initial", last/2)

	// Drill 1: kill a worker, restart it over its WAL. Replay rebuilds
	// the in-memory graph; tailing resumes from the stored sequence.
	fmt.Println("\n--- drill 1: kill + restart a follower (WAL replay) ---")
	seq := primaries[0].wal.LastSeq()
	addr, wal := followers[0].addr, walPath(0, 1)
	followers[0].stop()
	fmt.Printf("killed follower of partition 0 (%s)\n", addr)
	if followers[0], err = startWorker(wal, addr, replica.Config{
		Role: replica.RoleFollower, PrimaryURL: primaries[0].url,
	}); err != nil {
		log.Fatal(err)
	}
	defer followers[0].stop()
	waitCaughtUp(followers[0].url, seq)
	fmt.Printf("restarted it from %s; replayed and caught up to seq %d\n", wal, seq)
	check("after restart", last/3)

	// Drill 2: kill a primary mid-stream, keep appending. The
	// coordinator promotes the caught-up follower; no acked event is
	// lost.
	fmt.Println("\n--- drill 2: kill a primary (follower promotion) ---")
	primaries[1].stop()
	fmt.Printf("killed primary of partition 1 (%s)\n", primaries[1].addr)
	var more historygraph.EventList
	for i := 0; i < 50; i++ {
		more = append(more, historygraph.Event{
			Type: historygraph.AddNode, At: last + 3, Node: historygraph.NodeID(500000 + i),
		})
	}
	res2, err := client.Append(more)
	if err != nil {
		log.Fatal(err)
	}
	if len(res2.Partial) != 0 {
		log.Fatalf("append after primary death reported partial %+v", res2.Partial)
	}
	fmt.Printf("appended %d more events across the failure — %d failover(s), no partial hole\n",
		res2.Appended, co.Failovers())
	st, err := replica.Status(context.Background(), http.DefaultClient, followers[1].url)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition 1 is now led by the promoted follower (%s, role %s)\n", followers[1].url, st.Role)
	if err := ogm.AppendAll(more); err != nil {
		log.Fatal(err)
	}
	check("after failover", last+3)
	fmt.Println("\nevery acked event survived both failures")
}
