// Timetravel tours the temporal query surface: multipoint retrieval,
// interval queries with transient events, TimeExpression queries, and
// runtime materialization.
//
//	go run ./examples/timetravel
package main

import (
	"fmt"
	"log"

	"historygraph"
	"historygraph/internal/datagen"
)

func main() {
	// Dataset-2-flavored history: growth followed by churn.
	base := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 400, Edges: 2000, Years: 10, TicksPerYear: 1000, AttrsPerNode: 2, Seed: 12,
	})
	events := datagen.Churn(base, datagen.ChurnConfig{Adds: 1500, Dels: 1500, Ticks: 5000, Seed: 13})
	// A couple of transient events (instantaneous messages).
	_, last := events.Span()
	events = append(events,
		historygraph.Event{Type: historygraph.TransientEdge, At: last + 10, Edge: 1 << 30, Node: 1, Node2: 2},
		historygraph.Event{Type: historygraph.TransientEdge, At: last + 20, Edge: 1<<30 + 1, Node: 2, Node2: 3},
	)
	gm, err := historygraph.BuildFrom(events, historygraph.Options{
		LeafEventlistSize: 600, Arity: 4, DifferentialFunction: "balanced",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gm.Close()
	_, last = events.Span()

	// Multipoint: "every Sunday" style periodic snapshots in one query.
	var ts []historygraph.Time
	for i := 1; i <= 6; i++ {
		ts = append(ts, last*historygraph.Time(i)/7)
	}
	graphs, err := gm.GetHistGraphs(ts, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multipoint retrieval:")
	for i, h := range graphs {
		fmt.Printf("  t=%-6d %5d nodes %5d edges\n", ts[i], h.NumNodes(), h.NumEdges())
	}

	// Interval query: what was added in the middle third, plus transients.
	ir, err := gm.GetHistGraphInterval(last/3, 2*last/3, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval [%d, %d): %d nodes and %d edges added, %d transient events\n",
		last/3, 2*last/3, len(ir.Graph.Nodes), len(ir.Graph.Edges), len(ir.Transients))
	ir2, err := gm.GetHistGraphInterval(last, last+100, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval [%d, %d): %d transient events (the messages)\n", last, last+100, len(ir2.Transients))

	// TimeExpression: elements that survived the churn (t1 ∧ t2) and the
	// churn casualties (t1 ∧ ¬t2).
	t1, t2 := ts[2], ts[5]
	survived, err := gm.GetHistGraphExpr(historygraph.TimeExpression{
		Times: []historygraph.Time{t1, t2},
		Expr:  historygraph.And{historygraph.Var(0), historygraph.Var(1)},
	}, "")
	if err != nil {
		log.Fatal(err)
	}
	gone, err := gm.GetHistGraphExpr(historygraph.TimeExpression{
		Times: []historygraph.Time{t1, t2},
		Expr:  historygraph.And{historygraph.Var(0), historygraph.Not{E: historygraph.Var(1)}},
	}, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("of the edges at t=%d: %d survived to t=%d, %d were deleted\n",
		t1, len(survived.Edges), t2, len(gone.Edges))

	// Materialization: pin the root's children and compare a query's
	// planner cost before/after.
	before, _ := gm.DeltaGraph().PlanCost(last/2, historygraph.MustParseAttrOptions(""))
	if err := gm.Materialize("children"); err != nil {
		log.Fatal(err)
	}
	after, _ := gm.DeltaGraph().PlanCost(last/2, historygraph.MustParseAttrOptions(""))
	fmt.Printf("planner cost at t=%d: %d bytes before materialization, %d after\n", last/2, before, after)
}
