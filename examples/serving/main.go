// Serving: run the snapshot query service in-process, ingest history over
// the wire, and query it concurrently — the many-analysts deployment the
// paper assumes, in miniature. Repeat queries at a popular timepoint hit
// the hot-snapshot cache; concurrent identical queries coalesce into one
// DeltaGraph retrieval.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"sync"

	"historygraph"
	"historygraph/internal/datagen"
	"historygraph/internal/server"
)

func main() {
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer gm.Close()

	svc := server.New(gm, server.Config{CacheSize: 8})
	defer svc.Close()
	httpSrv := httptest.NewServer(svc.Handler())
	defer httpSrv.Close()
	fmt.Printf("serving on %s\n", httpSrv.URL)

	// Ingest a synthetic evolving network over the wire.
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 300, Edges: 900, Years: 5, AttrsPerNode: 2, Seed: 7,
	})
	client := server.NewClient(httpSrv.URL)
	res, err := client.Append(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended %d events, history now ends at t=%d\n", res.Appended, res.LastTime)

	// 32 concurrent clients hammer the same two timepoints.
	mid := historygraph.Time(res.LastTime / 2)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		t := mid
		if i%2 == 0 {
			t = mid / 2
		}
		wg.Add(1)
		go func(t historygraph.Time) {
			defer wg.Done()
			if _, err := client.Snapshot(t, "+node:all", false); err != nil {
				log.Fatal(err)
			}
		}(t)
	}
	wg.Wait()

	// One more round: by now both timepoints are hot.
	for _, t := range []historygraph.Time{mid, mid / 2} {
		snap, err := client.Snapshot(t, "+node:all", false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%d: %d nodes, %d edges (cached=%v)\n", int64(t), snap.NumNodes, snap.NumEdges, snap.Cached)
	}

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d requests with %d DeltaGraph retrievals (%d coalesced, %d cache hits)\n",
		stats.Server.Requests, stats.Server.Retrievals, stats.Server.Coalesced, stats.Server.CacheHits)
}
