// Quickstart: build a small historical graph database, update it with
// events, and retrieve snapshots from the past.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"historygraph"
)

func main() {
	// An in-memory database; set StorePath in Options to persist.
	gm, err := historygraph.Open(historygraph.Options{
		LeafEventlistSize: 4,
		Arity:             2,
		// Intersection is the most compact differential function; see
		// "balanced" or "mixed:0.9:0.9" for latency-shaping options.
		DifferentialFunction: "intersection",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gm.Close()

	// Record the network's history: a tiny collaboration network.
	// Event timestamps are application-defined discrete ticks.
	events := historygraph.EventList{
		{Type: historygraph.AddNode, At: 1, Node: 1},
		{Type: historygraph.SetNodeAttr, At: 1, Node: 1, Attr: "name", New: "ada", HasNew: true},
		{Type: historygraph.AddNode, At: 2, Node: 2},
		{Type: historygraph.SetNodeAttr, At: 2, Node: 2, Attr: "name", New: "bob", HasNew: true},
		{Type: historygraph.AddEdge, At: 3, Edge: 1, Node: 1, Node2: 2},
		{Type: historygraph.AddNode, At: 4, Node: 3},
		{Type: historygraph.SetNodeAttr, At: 4, Node: 3, Attr: "name", New: "cho", HasNew: true},
		{Type: historygraph.AddEdge, At: 5, Edge: 2, Node: 2, Node2: 3},
		{Type: historygraph.DelEdge, At: 6, Edge: 1, Node: 1, Node2: 2},
		{Type: historygraph.AddEdge, At: 7, Edge: 3, Node: 1, Node2: 3},
	}
	if err := gm.AppendAll(events); err != nil {
		log.Fatal(err)
	}

	// Retrieve the graph as of t=5, with node names.
	h, err := gm.GetHistGraph(5, "+node:name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph as of t=5: %d nodes, %d edges\n", h.NumNodes(), h.NumEdges())
	for _, n := range h.Nodes() {
		name, _ := h.NodeAttr(n, "name")
		fmt.Printf("  node %d (%s) neighbors=%v\n", n, name, h.Neighbors(n))
	}
	gm.Release(h) // hand the snapshot back to the pool

	// The current graph is always available for ongoing updates.
	cur := gm.CurrentGraph()
	fmt.Printf("current graph: %d nodes, %d edges\n", cur.NumNodes(), cur.NumEdges())

	// Which edges existed at t=5 but are gone now? A TimeExpression query.
	diff, err := gm.GetHistGraphExpr(historygraph.TimeExpression{
		Times: []historygraph.Time{5, 7},
		Expr:  historygraph.And{historygraph.Var(0), historygraph.Not{E: historygraph.Var(1)}},
	}, "")
	if err != nil {
		log.Fatal(err)
	}
	for e, info := range diff.Edges {
		fmt.Printf("edge %d (%d-%d) existed at t=5 but not at t=7\n", e, info.From, info.To)
	}
}
