// Distributed demonstrates the horizontal-partitioning path of Sections
// 4.2/4.6: the index is split across five storage partitions ("machines"),
// snapshots are retrieved with one parallel fetch per partition, and a
// Pregel-style PageRank runs over the retrieved snapshot with one worker
// per machine — the paper's Dataset 3 deployment in miniature.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"historygraph/internal/analytics"
	"historygraph/internal/datagen"
	"historygraph/internal/delta"
	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"
	"historygraph/internal/pregel"
)

func main() {
	const machines = 5
	// A patent-citation-like trace: a large starting snapshot followed by
	// add/delete churn.
	events := datagen.PatentLike(datagen.PatentLikeConfig{
		Nodes: 3000, Edges: 10000, ChurnAdds: 8000, ChurnDels: 8000, Seed: 11,
	})
	dg, err := deltagraph.Build(events, deltagraph.Options{
		LeafSize: 2000, Arity: 4, Function: delta.Intersection{},
		Partitions: machines, // one store partition per machine
	})
	if err != nil {
		log.Fatal(err)
	}
	st := dg.Stats()
	fmt.Printf("index: %d leaves, height %d, %.2f MB across %d partitions\n",
		st.Leaves, st.Height, float64(st.DiskBytes)/(1<<20), machines)

	_, last := events.Span()
	for _, frac := range []int{1, 2, 3} {
		q := last * graph.Time(frac) / 4
		start := time.Now()
		snap, err := dg.GetSnapshot(q, graph.AttrOptions{})
		if err != nil {
			log.Fatal(err)
		}
		retrieval := time.Since(start)

		start = time.Now()
		ranks := pregel.RunPageRank(analytics.FromSnapshot(snap), machines, 20)
		compute := time.Since(start)

		top := analytics.TopK(ranks, 3)
		fmt.Printf("t=%-7d %6d nodes %6d edges  retrieval=%-8v pagerank=%-8v top3=%v\n",
			q, len(snap.Nodes), len(snap.Edges), retrieval.Round(time.Microsecond),
			compute.Round(time.Microsecond), top)
	}
}
