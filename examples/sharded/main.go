// Sharded: run a 4-partition snapshot-service cluster in-process — one
// partition worker per horizontal slice of the node space, a coordinator
// scatter-gathering in front — ingest history through the coordinator,
// and verify the merged answers against an unsharded server over the
// same trace. Finishes by killing one partition to show partial-failure
// reporting.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"historygraph"
	"historygraph/internal/datagen"
	"historygraph/internal/server"
	"historygraph/internal/shard"
)

const partitions = 4

func main() {
	// Start four empty partition workers. Each is an ordinary query
	// service; the coordinator is what makes them a cluster.
	var peerURLs []string
	var workerSrvs []*httptest.Server
	for i := 0; i < partitions; i++ {
		gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 256})
		if err != nil {
			log.Fatal(err)
		}
		defer gm.Close()
		svc := server.New(gm, server.Config{CacheSize: 8})
		defer svc.Close()
		hs := httptest.NewServer(svc.Handler())
		defer hs.Close()
		peerURLs = append(peerURLs, hs.URL)
		workerSrvs = append(workerSrvs, hs)
		fmt.Printf("partition %d serving on %s\n", i, hs.URL)
	}

	co, err := shard.New(peerURLs, shard.Config{})
	if err != nil {
		log.Fatal(err)
	}
	front := httptest.NewServer(co.Handler())
	defer front.Close()
	fmt.Printf("coordinator serving on %s\n\n", front.URL)

	// Ingest through the coordinator: each event is routed to the
	// partition that owns its primary node's hash slice.
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 300, Edges: 900, Years: 5, AttrsPerNode: 2, Seed: 7,
	})
	client := server.NewClient(front.URL)
	res, err := client.Append(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended %d events through the coordinator, history ends at t=%d\n", res.Appended, res.LastTime)
	for i, slice := range shard.PartitionEvents(events, partitions) {
		fmt.Printf("  partition %d owns %d events\n", i, len(slice))
	}

	// The merged snapshot must match an unsharded server byte for byte.
	gm, err := historygraph.BuildFrom(events, historygraph.Options{LeafEventlistSize: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer gm.Close()
	mid := historygraph.Time(res.LastTime / 2)
	merged, err := client.Snapshot(mid, "+node:all", false)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := gm.GetHistSnapshot(mid, "+node:all")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot t=%d: sharded %d nodes / %d edges, unsharded %d / %d\n",
		int64(mid), merged.NumNodes, merged.NumEdges, len(direct.Nodes), len(direct.Edges))
	if merged.NumNodes != len(direct.Nodes) || merged.NumEdges != len(direct.Edges) {
		log.Fatal("merge diverged from the unsharded oracle")
	}

	// Repeat: every partition now answers from its hot-snapshot cache.
	again, err := client.Snapshot(mid, "+node:all", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat query: cached=%v (cluster-wide cache hit)\n", again.Cached)

	// Kill one partition: queries keep answering from the surviving
	// three and report the hole instead of failing.
	workerSrvs[2].Close()
	partial, err := client.Snapshot(mid+1, "+node:all", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter killing partition 2: %d nodes (of %d), partial=%v\n",
		partial.NumNodes, merged.NumNodes, partial.Partial)
}
