package historygraph

import (
	"path/filepath"
	"testing"
)

// smallTrace: a co-authorship-flavored deterministic trace.
func smallTrace() EventList {
	var events EventList
	now := Time(0)
	addAuthor := func(id NodeID, name string) {
		now++
		events = append(events,
			Event{Type: AddNode, At: now, Node: id},
			Event{Type: SetNodeAttr, At: now, Node: id, Attr: "name", New: name, HasNew: true})
	}
	coauthor := func(eid EdgeID, a, b NodeID) {
		now++
		events = append(events, Event{Type: AddEdge, At: now, Edge: eid, Node: a, Node2: b})
	}
	addAuthor(1, "ada")
	addAuthor(2, "bob")
	addAuthor(3, "cho")
	coauthor(1, 1, 2)
	coauthor(2, 2, 3)
	addAuthor(4, "dee")
	coauthor(3, 3, 4)
	coauthor(4, 1, 4)
	return events
}

func TestEndToEndLifecycle(t *testing.T) {
	gm, err := Open(Options{LeafEventlistSize: 3, Arity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer gm.Close()
	events := smallTrace()
	if err := gm.AppendAll(events); err != nil {
		t.Fatal(err)
	}

	// Current graph.
	cur := gm.CurrentGraph()
	if cur.NumNodes() != 4 || cur.NumEdges() != 4 {
		t.Fatalf("current graph: %d nodes, %d edges", cur.NumNodes(), cur.NumEdges())
	}

	// Historical graph with attributes: after the first coauthorship.
	h, err := gm.GetHistGraph(5, "+node:name")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 3 || h.NumEdges() != 2 {
		t.Errorf("t=5: %d nodes, %d edges", h.NumNodes(), h.NumEdges())
	}
	if name, ok := h.NodeAttr(1, "name"); !ok || name != "ada" {
		t.Errorf("attr = %q, %v", name, ok)
	}
	nbrs := h.Neighbors(1)
	if len(nbrs) != 1 || nbrs[0] != 2 {
		t.Errorf("neighbors = %v", nbrs)
	}
	if err := gm.Release(h); err != nil {
		t.Fatal(err)
	}

	// Multipoint.
	hs, err := gm.GetHistGraphs([]Time{3, 6, 8}, "")
	if err != nil {
		t.Fatal(err)
	}
	if hs[0].NumNodes() != 3 || hs[2].NumNodes() != 4 {
		t.Errorf("multipoint sizes: %d, %d", hs[0].NumNodes(), hs[2].NumNodes())
	}

	// Detached snapshot.
	snap, err := gm.GetHistSnapshot(7, "+node:all")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Nodes) != 4 || len(snap.Edges) != 3 {
		t.Errorf("snapshot: %d nodes %d edges", len(snap.Nodes), len(snap.Edges))
	}

	// TimeExpression: edges valid at t=8 but not at t=5.
	expr, err := gm.GetHistGraphExpr(TimeExpression{
		Times: []Time{8, 5},
		Expr:  And{Var(0), Not{E: Var(1)}},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(expr.Edges) != 2 {
		t.Errorf("expression edges = %d, want 2", len(expr.Edges))
	}

	// Interval query.
	ir, err := gm.GetHistGraphInterval(4, 7, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Graph.Edges) != 2 {
		t.Errorf("interval edges = %d", len(ir.Graph.Edges))
	}

	// Materialization policies.
	if err := gm.Materialize("root"); err != nil {
		t.Fatal(err)
	}
	if err := gm.Materialize("leaves"); err != nil {
		t.Fatal(err)
	}
	h2, err := gm.GetHistGraph(5, "")
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumNodes() != 3 {
		t.Error("materialized retrieval differs")
	}

	if gm.IndexStats().Leaves == 0 {
		t.Error("no leaves in stats")
	}
	if gm.PoolStats().ActiveGraphs == 0 {
		t.Error("no active graphs")
	}
}

func TestPersistentLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	gm, err := Open(Options{LeafEventlistSize: 3, Arity: 2, StorePath: path, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := gm.AppendAll(smallTrace()); err != nil {
		t.Fatal(err)
	}
	if err := gm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := gm.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Load(Options{StorePath: path, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	h, err := re.GetHistGraph(5, "")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 3 || h.NumEdges() != 2 {
		t.Errorf("reloaded t=5: %d nodes, %d edges", h.NumNodes(), h.NumEdges())
	}
	// Keep appending after reload.
	if err := re.Append(Event{Type: AddNode, At: 100, Node: 99}); err != nil {
		t.Fatal(err)
	}
	if !re.CurrentGraph().HasNode(99) {
		t.Error("append after reload missing")
	}
}

func TestPartitionedPersistentStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	gm, err := Open(Options{LeafEventlistSize: 3, Arity: 2, Partitions: 3, StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer gm.Close()
	if err := gm.AppendAll(smallTrace()); err != nil {
		t.Fatal(err)
	}
	h, err := gm.GetHistGraph(6, "")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 4 {
		t.Errorf("partitioned retrieval: %d nodes", h.NumNodes())
	}
	// One file per partition.
	for i := 0; i < 3; i++ {
		if _, err := filepath.Glob(path + ".p*"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildFrom(t *testing.T) {
	gm, err := BuildFrom(smallTrace(), Options{LeafEventlistSize: 3, Arity: 2, DifferentialFunction: "balanced"})
	if err != nil {
		t.Fatal(err)
	}
	defer gm.Close()
	h, err := gm.GetHistGraph(8, "")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 4 {
		t.Errorf("edges = %d", h.NumEdges())
	}
}

func TestOptionErrors(t *testing.T) {
	if _, err := Open(Options{DifferentialFunction: "nope"}); err == nil {
		t.Error("bad differential function accepted")
	}
	if _, err := Load(Options{}); err == nil {
		t.Error("Load without path accepted")
	}
	gm, _ := Open(Options{})
	defer gm.Close()
	if _, err := gm.GetHistGraph(1, "bogus options"); err == nil {
		t.Error("bad attr options accepted")
	}
	if _, err := gm.GetHistGraphs([]Time{1}, "bogus"); err == nil {
		t.Error("bad attr options accepted in multipoint")
	}
}
