package historygraph_test

// TestDocsLinks is the docs gate: every relative cross-reference in
// README.md and docs/*.md must point at a file that exists, and every
// #anchor must resolve to a real heading in its target — so the
// architecture guide, wire spec, and runbook cannot silently drift
// apart. External (http/https/mailto) links are out of scope.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) while skipping images and code spans
// crudely enough for these docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingAnchor converts a markdown heading line to its GitHub-style
// anchor: lowercase, punctuation stripped, spaces to hyphens.
func headingAnchor(heading string) string {
	h := strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf returns the set of heading anchors a markdown file defines.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		anchors[headingAnchor(strings.TrimLeft(line, "# "))] = true
	}
	return anchors
}

func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) < 3 {
		t.Fatalf("expected at least ARCHITECTURE/WIRE/OPERATIONS under docs/, found %v", docs)
	}
	files = append(files, docs...)

	anchorCache := map[string]map[string]bool{}
	anchors := func(path string) map[string]bool {
		if a, ok := anchorCache[path]; ok {
			return a
		}
		a := anchorsOf(t, path)
		anchorCache[path] = a
		return a
	}

	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s: link %q: target does not exist", file, target))
					continue
				}
			}
			if frag != "" && strings.HasSuffix(resolved, ".md") {
				if !anchors(resolved)[frag] {
					problems = append(problems, fmt.Sprintf("%s: link %q: no heading for anchor %q in %s", file, target, frag, resolved))
				}
			}
		}
	}
	for _, p := range problems {
		t.Error(p)
	}

	// Sections other parts of the repo promise exist (server godoc and
	// the README point operators at them) must not be renamed away.
	required := map[string][]string{
		"README.md": {"observability", "load-testing"},
		filepath.Join("docs", "ARCHITECTURE.md"): {
			"the-analytics-plane", "merge-semantics",
			"pagerank-superstep-wire-flow", "the-csr-scan-substrate",
			"the-write-path", "streaming-ingest",
		},
		filepath.Join("docs", "OPERATIONS.md"): {
			"observability", "metric-reference", "liveness-vs-readiness",
			"scrape-configuration", "alert-rules",
			"load-testing", "scenario-file-reference", "chaos-hooks",
			"reading-a-result-artifact",
			"analytics-endpoints", "analytics-tuning",
			"ingest-tuning-and-troubleshooting",
		},
	}
	for file, want := range required {
		a := anchors(file)
		for _, anchor := range want {
			if !a[anchor] {
				t.Errorf("%s: required section anchor %q missing", file, anchor)
			}
		}
	}
}
