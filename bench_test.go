// Benchmarks: one per table/figure of the paper's evaluation. Each
// exercises the same code paths as the corresponding internal/bench runner
// (cmd/dgbench prints the full paper-style series; these give -benchmem
// per-operation costs).
//
//	go test -bench=. -benchmem
package historygraph_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"historygraph"
	"historygraph/internal/analytics"
	"historygraph/internal/auxindex"
	"historygraph/internal/baseline"
	"historygraph/internal/bench"
	"historygraph/internal/csr"
	"historygraph/internal/datagen"
	"historygraph/internal/delta"
	"historygraph/internal/deltagraph"
	"historygraph/internal/graph"
	"historygraph/internal/graphpool"
	"historygraph/internal/metrics"
	"historygraph/internal/pregel"
	"historygraph/internal/replica"
	"historygraph/internal/server"
	"historygraph/internal/shard"
	"historygraph/internal/wire"
)

const benchScale = 0.5

var (
	benchOnce sync.Once
	benchD1   graph.EventList
	benchD2   graph.EventList
	benchL    int
	allAttrs  = graph.MustParseAttrOptions("+node:all+edge:all")
)

func setup(b *testing.B) (d1, d2 graph.EventList, L int) {
	b.Helper()
	benchOnce.Do(func() {
		benchD1, benchD2 = bench.Datasets(benchScale)
		benchL = int(800 * benchScale)
	})
	return benchD1, benchD2, benchL
}

func mustBuild(b *testing.B, events graph.EventList, opts deltagraph.Options) *deltagraph.DeltaGraph {
	b.Helper()
	dg, err := deltagraph.Build(events, opts)
	if err != nil {
		b.Fatal(err)
	}
	return dg
}

func queryLoop(b *testing.B, events graph.EventList, get func(graph.Time) error) {
	b.Helper()
	_, last := events.Span()
	times := make([]graph.Time, 25)
	for i := range times {
		times[i] = last * graph.Time(i+1) / 26
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := get(times[i%len(times)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 compares Copy+Log with DeltaGraph(Intersection) at a
// matched disk budget (Figure 6).
func BenchmarkFig6(b *testing.B) {
	d1, d2, L := setup(b)
	for _, tc := range []struct {
		name   string
		events graph.EventList
	}{{"D1", d1}, {"D2", d2}} {
		dg := mustBuild(b, tc.events, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}})
		cl, err := baseline.BuildCopyLog(tc.events, L*8, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name+"/CopyLog", func(b *testing.B) {
			queryLoop(b, tc.events, func(q graph.Time) error { _, e := cl.Snapshot(q, allAttrs); return e })
		})
		b.Run(tc.name+"/DeltaGraph", func(b *testing.B) {
			queryLoop(b, tc.events, func(q graph.Time) error { _, e := dg.GetSnapshot(q, allAttrs); return e })
		})
	}
}

// BenchmarkFig7 compares the in-memory interval tree against DeltaGraph
// materialization levels (Figure 7).
func BenchmarkFig7(b *testing.B) {
	_, d2, L := setup(b)
	it := baseline.BuildIntervalTree(d2)
	b.Run("IntervalTree", func(b *testing.B) {
		queryLoop(b, d2, func(q graph.Time) error { _, e := it.Snapshot(q, allAttrs); return e })
	})
	dgGC := mustBuild(b, d2, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}})
	if err := dgGC.MaterializeLevel("grandchildren"); err != nil {
		b.Fatal(err)
	}
	b.Run("DGGrandchildrenMat", func(b *testing.B) {
		queryLoop(b, d2, func(q graph.Time) error { _, e := dgGC.GetSnapshot(q, allAttrs); return e })
	})
	dgTot := mustBuild(b, d2, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}})
	if err := dgTot.MaterializeLevel("leaves"); err != nil {
		b.Fatal(err)
	}
	b.Run("DGTotalMat", func(b *testing.B) {
		queryLoop(b, d2, func(q graph.Time) error { _, e := dgTot.GetSnapshot(q, allAttrs); return e })
	})
}

// BenchmarkLogBaseline measures naive Log replay (Section 7 text).
func BenchmarkLogBaseline(b *testing.B) {
	d1, _, _ := setup(b)
	nl, err := baseline.BuildNaiveLog(d1, nil)
	if err != nil {
		b.Fatal(err)
	}
	queryLoop(b, d1, func(q graph.Time) error { _, e := nl.Snapshot(q, allAttrs); return e })
}

// BenchmarkFig8aGraphPoolOverlay measures retrieval into the GraphPool
// with overlap exploitation (Figure 8a's workload).
func BenchmarkFig8aGraphPoolOverlay(b *testing.B) {
	d1, _, L := setup(b)
	pool := graphpool.New()
	dg := mustBuild(b, d1, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}, Pool: pool})
	_, last := d1.Span()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := dg.Retrieve(last*graph.Time(i%100+1)/101, allAttrs)
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Release(id); err != nil {
			b.Fatal(err)
		}
		if i%32 == 31 {
			pool.CleanNow()
		}
	}
}

// BenchmarkFig8bParallelRetrieval measures partition-parallel fetch
// (Figure 8b) under a simulated per-read latency.
func BenchmarkFig8bParallelRetrieval(b *testing.B) {
	_, d2, L := setup(b)
	for _, p := range []int{1, 2, 4} {
		store := bench.WithLatency(p, 30000, 25)
		dg := mustBuild(b, d2, deltagraph.Options{
			LeafSize: L, Arity: 4, Function: delta.Intersection{}, Partitions: p, Store: store,
		})
		b.Run(map[int]string{1: "P1", 2: "P2", 4: "P4"}[p], func(b *testing.B) {
			queryLoop(b, d2, func(q graph.Time) error { _, e := dg.GetSnapshot(q, allAttrs); return e })
		})
	}
}

// BenchmarkFig8cMultipoint compares one 5-point multipoint query against
// five singlepoint queries (Figure 8c).
func BenchmarkFig8cMultipoint(b *testing.B) {
	d1, _, L := setup(b)
	dg := mustBuild(b, d1, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}})
	_, last := d1.Span()
	ts := make([]graph.Time, 5)
	for i := range ts {
		ts[i] = last/2 + graph.Time(i)*800
	}
	b.Run("Singlepoints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range ts {
				if _, err := dg.GetSnapshot(q, allAttrs); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Multipoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dg.GetSnapshots(ts, allAttrs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig8dColumnar compares structure-only with structure+attribute
// retrieval (Figure 8d).
func BenchmarkFig8dColumnar(b *testing.B) {
	_, d2, L := setup(b)
	dg := mustBuild(b, d2, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}})
	b.Run("StructureOnly", func(b *testing.B) {
		queryLoop(b, d2, func(q graph.Time) error { _, e := dg.GetSnapshot(q, graph.AttrOptions{}); return e })
	})
	b.Run("StructurePlusAttrs", func(b *testing.B) {
		queryLoop(b, d2, func(q graph.Time) error { _, e := dg.GetSnapshot(q, allAttrs); return e })
	})
}

// BenchmarkFig9Arity measures query latency across arities (Figure 9a);
// disk-space numbers come from cmd/dgbench -exp fig9.
func BenchmarkFig9Arity(b *testing.B) {
	d1, _, L := setup(b)
	for _, k := range []int{2, 4, 8} {
		dg := mustBuild(b, d1, deltagraph.Options{LeafSize: L, Arity: k, Function: delta.Intersection{}})
		b.Run(map[int]string{2: "K2", 4: "K4", 8: "K8"}[k], func(b *testing.B) {
			queryLoop(b, d1, func(q graph.Time) error { _, e := dg.GetSnapshot(q, allAttrs); return e })
		})
	}
}

// BenchmarkFig9EventlistSize measures query latency across leaf-eventlist
// sizes (Figure 9b).
func BenchmarkFig9EventlistSize(b *testing.B) {
	d1, _, L := setup(b)
	for mul, name := range map[int]string{1: "L1x", 4: "L4x"} {
		dg := mustBuild(b, d1, deltagraph.Options{LeafSize: L * mul, Arity: 4, Function: delta.Intersection{}})
		b.Run(name, func(b *testing.B) {
			queryLoop(b, d1, func(q graph.Time) error { _, e := dg.GetSnapshot(q, allAttrs); return e })
		})
	}
}

// BenchmarkFig10Materialization measures retrieval at each materialization
// depth (Figure 10).
func BenchmarkFig10Materialization(b *testing.B) {
	_, d2, L := setup(b)
	for _, policy := range []string{"none", "root", "children", "grandchildren"} {
		dg := mustBuild(b, d2, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}})
		if policy != "none" {
			if err := dg.MaterializeLevel(policy); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(policy, func(b *testing.B) {
			queryLoop(b, d2, func(q graph.Time) error { _, e := dg.GetSnapshot(q, allAttrs); return e })
		})
	}
}

// BenchmarkFig11aDiffFunctions compares Intersection and Balanced
// retrieval (Figure 11a).
func BenchmarkFig11aDiffFunctions(b *testing.B) {
	d1, _, L := setup(b)
	for _, tc := range []struct {
		name string
		fn   delta.Differential
	}{{"Intersection", delta.Intersection{}}, {"Balanced", delta.Balanced()}} {
		dg := mustBuild(b, d1, deltagraph.Options{LeafSize: L, Arity: 2, Function: tc.fn})
		b.Run(tc.name, func(b *testing.B) {
			queryLoop(b, d1, func(q graph.Time) error { _, e := dg.GetSnapshot(q, allAttrs); return e })
		})
	}
}

// BenchmarkFig11bMixed compares Mixed configurations with the root
// materialized (Figure 11b), querying the recent end of history.
func BenchmarkFig11bMixed(b *testing.B) {
	d1, _, L := setup(b)
	_, last := d1.Span()
	for _, tc := range []struct {
		name string
		r    float64
	}{{"R01", 0.1}, {"R09", 0.9}} {
		dg := mustBuild(b, d1, deltagraph.Options{LeafSize: L, Arity: 2, Function: delta.Mixed{R1: tc.r, R2: tc.r}})
		if err := dg.MaterializeLevel("root"); err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dg.GetSnapshot(last*9/10, allAttrs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDataset3PageRank measures the partitioned retrieval + parallel
// PageRank pipeline (the Section 7 experimental-setup run).
func BenchmarkDataset3PageRank(b *testing.B) {
	events := bench.Dataset3(0.25)
	dg := mustBuild(b, events, deltagraph.Options{
		LeafSize: 500, Arity: 4, Function: delta.Intersection{}, Partitions: 5,
	})
	_, last := events.Span()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := dg.GetSnapshot(last*3/4, graph.AttrOptions{})
		if err != nil {
			b.Fatal(err)
		}
		pregel.RunPageRank(analytics.FromSnapshot(snap), 5, 10)
	}
}

// BenchmarkBitmapPenalty measures PageRank through GraphPool bitmaps vs an
// extracted copy (Section 7 text: < 7% penalty).
func BenchmarkBitmapPenalty(b *testing.B) {
	d1, _, L := setup(b)
	pool := graphpool.New()
	dg := mustBuild(b, d1, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}, Pool: pool})
	_, last := d1.Span()
	id, err := dg.Retrieve(last*3/4, graph.AttrOptions{})
	if err != nil {
		b.Fatal(err)
	}
	view, err := pool.View(id)
	if err != nil {
		b.Fatal(err)
	}
	frozen := view.Freeze()
	plain := analytics.FromSnapshot(view.Snapshot())
	b.Run("PoolViewBitmaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analytics.PageRank(frozen, 0.85, 5)
		}
	})
	b.Run("ExtractedCopy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analytics.PageRank(plain, 0.85, 5)
		}
	})
}

// BenchmarkPatternQuery measures a historical subgraph pattern query over
// the length-4 path index (Section 4.7).
func BenchmarkPatternQuery(b *testing.B) {
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 200, Edges: 800, Years: 10, TicksPerYear: 1000, AttrsPerNode: 1, Seed: 14,
	})
	var labeled graph.EventList
	for i, ev := range events {
		if ev.Type == graph.SetNodeAttr {
			ev.Attr = "label"
			ev.New = string(rune('A' + i%6))
		}
		labeled = append(labeled, ev)
	}
	idx := auxindex.NewPathIndex("label")
	dg := mustBuild(b, labeled, deltagraph.Options{LeafSize: 300, Arity: 4, AuxIndexes: []deltagraph.AuxIndex{idx}})
	m := &auxindex.Matcher{DG: dg, Index: idx}
	pattern := &auxindex.Pattern{
		Labels: map[graph.NodeID]string{1: "A", 2: "B", 3: "C", 4: "D"},
		Edges:  [][2]graph.NodeID{{1, 2}, {2, 3}, {3, 4}},
	}
	_, last := labeled.Span()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(last, pattern); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Evolution measures one step of the Figure 1 workload:
// retrieve a snapshot and compute PageRank ranks.
func BenchmarkFig1Evolution(b *testing.B) {
	d1, _, L := setup(b)
	dg := mustBuild(b, d1, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}})
	_, last := d1.Span()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := dg.GetSnapshot(last*graph.Time(i%10+1)/11, graph.AttrOptions{})
		if err != nil {
			b.Fatal(err)
		}
		analytics.RankOf(analytics.PageRank(analytics.FromSnapshot(snap), 0.85, 5))
	}
}

// BenchmarkIndexConstruction measures bulk construction throughput
// (Section 4.6).
func BenchmarkIndexConstruction(b *testing.B) {
	d1, _, L := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustBuild(b, d1, deltagraph.Options{LeafSize: L, Arity: 4, Function: delta.Intersection{}})
	}
}

// serverSetup starts the query service over a dataset-1 index for the
// serving-layer benchmarks.
func serverSetup(b *testing.B) (*server.Client, graph.Time) {
	b.Helper()
	d1, _, L := setup(b)
	gm, err := historygraph.BuildFrom(d1, historygraph.Options{LeafEventlistSize: L, Arity: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gm.Close() })
	svc := server.New(gm, server.Config{CacheSize: 8})
	httpSrv := httptest.NewServer(svc.Handler())
	b.Cleanup(func() { httpSrv.Close(); svc.Close() })
	_, last := d1.Span()
	return server.NewClient(httpSrv.URL), last
}

// BenchmarkServerSnapshot measures end-to-end queries/sec through the
// HTTP service: "cached" hammers one hot timepoint (hot-snapshot LRU
// hit, zero plan executions), "uncached" rotates through more timepoints
// than the cache holds so every query executes a DeltaGraph plan. The gap
// between the two is the serving-layer headroom future PRs build on.
func BenchmarkServerSnapshot(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		client, last := serverSetup(b)
		if _, err := client.Snapshot(last/2, "", false); err != nil {
			b.Fatal(err) // warm the cache
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := client.Snapshot(last/2, "", false); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("uncached", func(b *testing.B) {
		client, last := serverSetup(b)
		var i atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				// 64 distinct timepoints against a cache of 8: every
				// query misses and pays for plan execution.
				n := i.Add(1)
				t := last * graph.Time(n%64+1) / 65
				if _, err := client.Snapshot(t, "", false); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkServerBatch measures the multipoint endpoint (25 timepoints
// per request through the shared-delta plan).
func BenchmarkServerBatch(b *testing.B) {
	client, last := serverSetup(b)
	ts := make([]graph.Time, 25)
	for i := range ts {
		ts[i] = last * graph.Time(i+1) / 26
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Snapshots(ts, "", false); err != nil {
			b.Fatal(err)
		}
	}
}

// shardSetup starts a 4-partition in-process cluster over dataset 1: one
// server.Server per hash slice of the node space, a shard.Coordinator
// scatter-gathering in front.
func shardSetup(b *testing.B, cfg shard.Config) (*server.Client, graph.Time) {
	b.Helper()
	d1, _, L := setup(b)
	var urls []string
	for _, slice := range shard.PartitionEvents(d1, 4) {
		gm, err := historygraph.BuildFrom(slice, historygraph.Options{LeafEventlistSize: L, Arity: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { gm.Close() })
		svc := server.New(gm, server.Config{CacheSize: 8})
		httpSrv := httptest.NewServer(svc.Handler())
		b.Cleanup(func() { httpSrv.Close(); svc.Close() })
		urls = append(urls, httpSrv.URL)
	}
	co, err := shard.New(urls, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(co.Close)
	front := httptest.NewServer(co.Handler())
	b.Cleanup(front.Close)
	_, last := d1.Span()
	return server.NewClient(front.URL), last
}

// BenchmarkShardSnapshot measures end-to-end queries/sec through the
// 4-partition scatter-gather: "cached" hammers one hot timepoint (served
// from the coordinator's merged-response LRU with no fan-out at all),
// "uncached" disables that cache and rotates through more timepoints
// than the per-partition caches hold so every fan-out leg executes a
// DeltaGraph plan. Compare with BenchmarkServerSnapshot for the
// coordination overhead.
func BenchmarkShardSnapshot(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		client, last := shardSetup(b, shard.Config{})
		if _, err := client.Snapshot(last/2, "", false); err != nil {
			b.Fatal(err) // warm every partition's cache
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := client.Snapshot(last/2, "", false); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("uncached", func(b *testing.B) {
		client, last := shardSetup(b, shard.Config{CacheSize: -1})
		var i atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				// 64 distinct timepoints against per-partition caches of
				// 8: every query misses on every partition.
				n := i.Add(1)
				t := last * graph.Time(n%64+1) / 65
				if _, err := client.Snapshot(t, "", false); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkWALAppend measures the durable write-ahead log's append path:
// encode a 16-event batch, write it as sequenced CRC-checked records, and
// wait for the covering group sync — the per-batch durability tax every
// replicated append pays before it can be acked.
func BenchmarkWALAppend(b *testing.B) {
	wal, err := replica.OpenLog(filepath.Join(b.TempDir(), "wal.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer wal.Close()
	batch := make(graph.EventList, 16)
	for i := range batch {
		batch[i] = graph.Event{Type: graph.AddNode, At: graph.Time(i + 1), Node: graph.NodeID(i + 1)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wal.Append(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendConcurrent is BenchmarkWALAppend under concurrency:
// many appenders hammer one log, and the single-flusher group commit
// amortizes the fsync across everything in flight — per-append cost drops
// well below the serial sync tax as parallelism rises.
func BenchmarkWALAppendConcurrent(b *testing.B) {
	wal, err := replica.OpenLog(filepath.Join(b.TempDir(), "wal.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer wal.Close()
	batch := make(graph.EventList, 16)
	for i := range batch {
		batch[i] = graph.Event{Type: graph.AddNode, At: graph.Time(i + 1), Node: graph.NodeID(i + 1)}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := wal.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// replicatedSetup starts a 2-partition × 2-replica in-process cluster
// over dataset 1: each member a replica.Node (WAL-backed server) over its
// partition's slice, followers tailing their primaries, the coordinator
// spreading reads across both members of each set.
func replicatedSetup(b *testing.B, cfg shard.Config) (*server.Client, graph.Time) {
	b.Helper()
	d1, _, L := setup(b)
	dir := b.TempDir()
	startMember := func(p, r int, slice graph.EventList, nodeCfg replica.Config) string {
		gm, err := historygraph.BuildFrom(slice, historygraph.Options{LeafEventlistSize: L, Arity: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { gm.Close() })
		svc := server.New(gm, server.Config{CacheSize: 8})
		wal, err := replica.OpenLog(filepath.Join(dir, fmt.Sprintf("p%d-r%d.wal", p, r)))
		if err != nil {
			b.Fatal(err)
		}
		node, err := replica.NewNode(svc, wal, nodeCfg)
		if err != nil {
			b.Fatal(err)
		}
		httpSrv := httptest.NewServer(node.Handler())
		b.Cleanup(func() { httpSrv.Close(); node.Close(); svc.Close(); wal.Close() })
		return httpSrv.URL
	}
	var sets [][]string
	for p, slice := range shard.PartitionEvents(d1, 2) {
		primary := startMember(p, 0, slice, replica.Config{Role: replica.RolePrimary})
		follower := startMember(p, 1, slice, replica.Config{Role: replica.RoleFollower, PrimaryURL: primary})
		sets = append(sets, []string{primary, follower})
	}
	co, err := shard.NewReplicated(sets, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(co.Close)
	front := httptest.NewServer(co.Handler())
	b.Cleanup(front.Close)
	_, last := d1.Span()
	return server.NewClient(front.URL), last
}

// BenchmarkReplicatedSnapshot measures end-to-end queries/sec through
// the replicated 2×2 cluster: "cached" hammers one hot timepoint
// (merged-response LRU hit), "uncached" disables the coordinator cache
// and rotates timepoints so every query fans out with replica selection
// and retry bookkeeping on each leg. Compare with BenchmarkShardSnapshot
// for the replication layer's routing overhead.
func BenchmarkReplicatedSnapshot(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		client, last := replicatedSetup(b, shard.Config{})
		if _, err := client.Snapshot(last/2, "", false); err != nil {
			b.Fatal(err) // warm the merged-response cache
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := client.Snapshot(last/2, "", false); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("uncached", func(b *testing.B) {
		client, last := replicatedSetup(b, shard.Config{CacheSize: -1})
		var i atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := i.Add(1)
				t := last * graph.Time(n%64+1) / 65
				if _, err := client.Snapshot(t, "", false); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// benchWireSnapshot builds a large full-element snapshot response (>=10k
// elements with attributes) for the codec benchmarks.
func benchWireSnapshot() wire.Snapshot {
	const nodes, edges = 6000, 6000
	s := wire.Snapshot{At: 123456, NumNodes: nodes, NumEdges: edges}
	for i := 0; i < nodes; i++ {
		s.Nodes = append(s.Nodes, wire.Node{
			ID: int64(i * 3),
			Attrs: map[string]string{
				"affiliation": fmt.Sprintf("institute-%d", i%37),
				"name":        fmt.Sprintf("author-%d", i),
			},
		})
	}
	for i := 0; i < edges; i++ {
		s.Edges = append(s.Edges, wire.Edge{
			ID: int64(i * 5), From: int64((i * 3) % (nodes * 3)), To: int64((i * 7) % (nodes * 3)),
			Attrs: map[string]string{"year": fmt.Sprintf("%d", 1990+i%30)},
		})
	}
	return s
}

// BenchmarkWireEncode compares the codecs on a large (12k-element) full
// snapshot: encode and decode, JSON vs binary. The binary format's win
// here (varint deltas, interned keys, no field names) is what the
// scatter-leg and replication-stream refactors cash in end-to-end.
func BenchmarkWireEncode(b *testing.B) {
	snap := benchWireSnapshot()
	codecs := []wire.Codec{wire.JSON{}, wire.Binary{}}
	for _, codec := range codecs {
		data, err := codec.Encode(&snap)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("%s body: %d bytes", codec.Name(), len(data))
		b.Run(codec.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Encode(&snap); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(codec.Name()+"-decode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var out wire.Snapshot
				if err := codec.Decode(data, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardSnapshotBinary measures the data plane the wire refactor
// targets end-to-end: large full-element snapshots through the
// 4-partition scatter-gather, JSON legs + JSON client vs binary legs +
// binary client. The coordinator cache is off so every request pays leg
// decode + merge + response encode + client decode; worker hot caches are
// on so the DeltaGraph plan cost (identical either way) does not drown
// the wire path being compared.
func BenchmarkShardSnapshotBinary(b *testing.B) {
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 6000, Edges: 7000, Years: 6, AttrsPerNode: 2, Seed: 7,
	})
	_, last := events.Span()
	setup := func(b *testing.B, wireName string) *server.Client {
		b.Helper()
		var urls []string
		for _, slice := range shard.PartitionEvents(events, 4) {
			gm, err := historygraph.BuildFrom(slice, historygraph.Options{LeafEventlistSize: 2048, Arity: 4})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { gm.Close() })
			svc := server.New(gm, server.Config{CacheSize: 8})
			httpSrv := httptest.NewServer(svc.Handler())
			b.Cleanup(func() { httpSrv.Close(); svc.Close() })
			urls = append(urls, httpSrv.URL)
		}
		co, err := shard.New(urls, shard.Config{CacheSize: -1, Wire: wireName})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(co.Close)
		front := httptest.NewServer(co.Handler())
		b.Cleanup(front.Close)
		client, err := server.NewClient(front.URL).SetWire(wireName)
		if err != nil {
			b.Fatal(err)
		}
		return client
	}
	for _, wireName := range []string{"json", "binary"} {
		b.Run(wireName, func(b *testing.B) {
			client := setup(b, wireName)
			snap, err := client.Snapshot(last, "+node:all+edge:all", true)
			if err != nil {
				b.Fatal(err) // warm the worker caches
			}
			if snap.NumNodes+snap.NumEdges < 10000 {
				b.Fatalf("benchmark snapshot too small: %d nodes + %d edges", snap.NumNodes, snap.NumEdges)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Snapshot(last, "+node:all+edge:all", true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerSnapshotStream compares the two binary shapes of a
// large (≥10k-element) full=1 snapshot at the worker: the whole-message
// path materializes the complete []Node/[]Edge response struct plus one
// contiguous encoded body and the client decodes another full struct,
// while the streaming path walks the pinned view in bounded element runs
// and the client consumes them run by run — B/op on the stream side is
// O(run size), not O(snapshot), which is what keeps N concurrent large
// responses from multiplying into N full buffers. The encoded-bytes
// cache is off so every iteration pays the full build.
func BenchmarkServerSnapshotStream(b *testing.B) {
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 6000, Edges: 7000, Years: 6, AttrsPerNode: 2, Seed: 7,
	})
	_, last := events.Span()
	setup := func(b *testing.B) *server.Client {
		b.Helper()
		gm, err := historygraph.BuildFrom(events, historygraph.Options{LeafEventlistSize: 2048, Arity: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { gm.Close() })
		svc := server.New(gm, server.Config{CacheSize: 8, EncodedCacheSize: -1})
		httpSrv := httptest.NewServer(svc.Handler())
		b.Cleanup(func() { httpSrv.Close(); svc.Close() })
		client, err := server.NewClient(httpSrv.URL).SetWire("binary")
		if err != nil {
			b.Fatal(err)
		}
		return client
	}
	b.Run("whole", func(b *testing.B) {
		client := setup(b)
		snap, err := client.Snapshot(last, "+node:all+edge:all", true)
		if err != nil {
			b.Fatal(err) // warm the view cache; the wire path is the subject
		}
		if snap.NumNodes+snap.NumEdges < 10000 {
			b.Fatalf("benchmark snapshot too small: %d+%d elements", snap.NumNodes, snap.NumEdges)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Snapshot(last, "+node:all+edge:all", true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		client := setup(b)
		consume := func() (elements int, err error) {
			ss, err := client.SnapshotStreamCtx(context.Background(), last, "+node:all+edge:all")
			if err != nil {
				return 0, err
			}
			defer ss.Close()
			for {
				frame, err := ss.Next()
				if err != nil {
					return elements, err
				}
				elements += len(frame.Nodes) + len(frame.Edges)
				if frame.Summary != nil {
					return elements, nil
				}
			}
		}
		if n, err := consume(); err != nil {
			b.Fatal(err)
		} else if n < 10000 {
			b.Fatalf("benchmark snapshot too small: %d elements", n)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := consume(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorkerEncodedCacheHit measures the worker's encoded-bytes
// cache: a hit is one stored-bytes write with zero encode work ("hit",
// per codec) against the same request re-encoding its response every
// time off the hot view cache ("miss-encode"). The delta is the pure
// encode tax the cache removes from every repeat read of a hot
// timepoint.
func BenchmarkWorkerEncodedCacheHit(b *testing.B) {
	events := datagen.Coauthorship(datagen.CoauthorshipConfig{
		Authors: 6000, Edges: 7000, Years: 6, AttrsPerNode: 2, Seed: 7,
	})
	_, last := events.Span()
	run := func(b *testing.B, wireName string, encCache int) {
		b.Helper()
		gm, err := historygraph.BuildFrom(events, historygraph.Options{LeafEventlistSize: 2048, Arity: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { gm.Close() })
		svc := server.New(gm, server.Config{CacheSize: 8, EncodedCacheSize: encCache})
		httpSrv := httptest.NewServer(svc.Handler())
		b.Cleanup(func() { httpSrv.Close(); svc.Close() })
		client, err := server.NewClient(httpSrv.URL).SetWire(wireName)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := client.Snapshot(last, "+node:all+edge:all", true); err != nil {
			b.Fatal(err) // warm both caches
		}
		encodesBefore := svc.Encodes()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Snapshot(last, "+node:all+edge:all", true); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if encCache > 0 && svc.Encodes() != encodesBefore {
			b.Fatalf("cache hits executed %d encodes", svc.Encodes()-encodesBefore)
		}
	}
	for _, wireName := range []string{"json", "binary"} {
		b.Run(wireName+"-hit", func(b *testing.B) { run(b, wireName, 8) })
	}
	b.Run("json-miss-encode", func(b *testing.B) { run(b, "json", -1) })
}

// BenchmarkShardBatch measures the multipoint endpoint through the
// scatter-gather (each partition executes its slice of the shared-delta
// plan in parallel). The coordinator cache is off so every iteration
// pays the fan-out.
func BenchmarkShardBatch(b *testing.B) {
	client, last := shardSetup(b, shard.Config{CacheSize: -1})
	ts := make([]graph.Time, 25)
	for i := range ts {
		ts[i] = last * graph.Time(i+1) / 26
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Snapshots(ts, "", false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricsOverhead isolates the per-request cost of the metrics
// plane: the same trivial handler served bare and wrapped in the
// request-metrics middleware (status-class counter, latency histogram,
// request-ID mint + echo), driven in-process with no network. The
// instrumented/bare gap is the budget every endpoint pays per request;
// the CI bench gate holds it flat.
func BenchmarkMetricsOverhead(b *testing.B) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	})
	run := func(b *testing.B, h http.Handler) {
		req := httptest.NewRequest(http.MethodGet, "/stats", nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, handler) })
	b.Run("instrumented", func(b *testing.B) {
		ins := server.NewInstrumentation(metrics.NewRegistry(), []string{"/stats"}, 0)
		run(b, ins.Wrap(handler))
	})
}

// csrBenchView pins a dataset-1 midpoint view for the analytics-plane
// benchmarks.
func csrBenchView(b *testing.B) *historygraph.HistGraph {
	b.Helper()
	d1, _, L := setup(b)
	gm, err := historygraph.BuildFrom(d1, historygraph.Options{LeafEventlistSize: L, Arity: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gm.Close() })
	_, last := d1.Span()
	h, err := gm.GetHistGraph(last/2, "")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gm.Release(h) })
	return h
}

// BenchmarkCSRBuild measures materializing a pinned view into the
// compact CSR snapshot the /analytics scan path runs over — the one-time
// cost a cold scan pays before the (cached) kernels run.
func BenchmarkCSRBuild(b *testing.B) {
	h := csrBenchView(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := csr.Build(h); g.NumRows() == 0 {
			b.Fatal("empty CSR from a non-empty view")
		}
	}
}

// BenchmarkAnalyticsPageRank runs the same PageRank kernel over the
// pinned view directly ("viewwalk": every Neighbors call re-checks the
// pool's overlaid bitmaps) and over the materialized CSR ("csr": one
// contiguous adjacency array). The gap is why internal/csr exists.
func BenchmarkAnalyticsPageRank(b *testing.B) {
	h := csrBenchView(b)
	const damping, iterations = 0.85, 10
	b.Run("viewwalk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ranks := analytics.PageRank(h, damping, iterations); len(ranks) == 0 {
				b.Fatal("no ranks")
			}
		}
	})
	b.Run("csr", func(b *testing.B) {
		g := csr.Build(h)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ranks := analytics.PageRank(g, damping, iterations); len(ranks) == 0 {
				b.Fatal("no ranks")
			}
		}
	})
}

// BenchmarkShardedDegreeDist measures the distributed degree scan
// through the 4-partition coordinator: "cached" hammers one timepoint
// (merged-response LRU hit), "uncached" disables the coordinator cache
// and rotates past the workers' CSR caches so every query scans and
// merges.
func BenchmarkShardedDegreeDist(b *testing.B) {
	ctx := context.Background()
	b.Run("cached", func(b *testing.B) {
		client, last := shardSetup(b, shard.Config{})
		if _, err := client.AnalyticsDegreeCtx(ctx, last/2, ""); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := client.AnalyticsDegreeCtx(ctx, last/2, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("uncached", func(b *testing.B) {
		client, last := shardSetup(b, shard.Config{CacheSize: -1})
		var i atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				// 64 distinct timepoints against per-worker CSR caches of
				// 16: every scan rebuilds its CSR and re-merges.
				n := i.Add(1)
				t := last * graph.Time(n%64+1) / 65
				if _, err := client.AnalyticsDegreeCtx(ctx, t, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// nodeAppendSetup starts one WAL-backed primary replica node (no
// followers) behind an HTTP front — the smallest unit that exercises the
// full replicated append path: decode, validate, durable WAL write, and
// in-memory apply.
func nodeAppendSetup(b *testing.B) *httptest.Server {
	b.Helper()
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: 512})
	if err != nil {
		b.Fatal(err)
	}
	svc := server.New(gm, server.Config{CacheSize: 8})
	wal, err := replica.OpenLog(filepath.Join(b.TempDir(), "wal.log"))
	if err != nil {
		b.Fatal(err)
	}
	node, err := replica.NewNode(svc, wal, replica.Config{})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(node.Handler())
	b.Cleanup(func() { hs.Close(); node.Close(); svc.Close(); wal.Close(); gm.Close() })
	return hs
}

// BenchmarkNodeAppendConcurrent measures sustained appends/sec through a
// replica node's whole append path under concurrency: many clients each
// POST 16-event batches (equal event times, so admission order never
// rejects) against one primary. This is the number the append pipeline
// exists to move — batches should share group-committed fsyncs and
// overlap validation, logging, and apply instead of serializing.
func BenchmarkNodeAppendConcurrent(b *testing.B) {
	hs := nodeAppendSetup(b)
	var nextNode atomic.Int64
	ctx := context.Background()
	// 4 client goroutines per GOMAXPROCS: ingest clients are I/O-bound
	// (most of an append's wall time is the WAL group commit), so a
	// realistic writer pool is several times wider than the core count.
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client, err := server.NewClient(hs.URL).SetWire("binary")
		if err != nil {
			b.Fatal(err)
		}
		batch := make(graph.EventList, 16)
		for pb.Next() {
			base := nextNode.Add(16) - 16
			for i := range batch {
				batch[i] = graph.Event{Type: graph.AddNode, At: 1, Node: graph.NodeID(base + int64(i) + 1)}
			}
			if _, err := client.AppendCtx(ctx, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendStream measures the streaming ingest front door against
// the same replica node: each writer holds one long-lived POST
// /append?stream=1 connection and sends 16-event batch frames, so HTTP
// setup, headers, and response parsing are paid per stream instead of per
// batch, and the pipeline overlaps every in-flight frame's log, sync, and
// apply. One op is one 16-event frame — directly comparable to one op of
// BenchmarkNodeAppendConcurrent.
func BenchmarkAppendStream(b *testing.B) {
	hs := nodeAppendSetup(b)
	var nextNode atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := server.NewClient(hs.URL)
		stream, err := client.AppendStream()
		if err != nil {
			b.Fatal(err)
		}
		batch := make(graph.EventList, 16)
		for pb.Next() {
			base := nextNode.Add(16) - 16
			for i := range batch {
				batch[i] = graph.Event{Type: graph.AddNode, At: 1, Node: graph.NodeID(base + int64(i) + 1)}
			}
			if err := stream.Send(batch); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := stream.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkSlotRoute measures the slot-routing hot path — hashing an
// event to its slot and resolving the owner in the versioned table —
// paid once per event on every append the coordinator scatters.
func BenchmarkSlotRoute(b *testing.B) {
	d1, _, _ := setup(b)
	tbl := shard.DefaultSlotTable(4)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += tbl.Partition(d1[i%len(d1)])
	}
	_ = sink
}

// BenchmarkMigrationStream measures one complete slot migration: a fresh
// WAL-backed target streams a source primary's entire dataset-1 history
// through the slot-filtered replay protocol, applies it through its
// append pipeline, and reports the ingest done. One op is one end-to-end
// migration — the data-movement cost of a reshard, minus the cutover.
func BenchmarkMigrationStream(b *testing.B) {
	d1, _, L := setup(b)
	dir := b.TempDir()
	gm, err := historygraph.Open(historygraph.Options{LeafEventlistSize: L})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gm.Close() })
	svc := server.New(gm, server.Config{CacheSize: 8})
	wal, err := replica.OpenLog(filepath.Join(dir, "src.wal"))
	if err != nil {
		b.Fatal(err)
	}
	node, err := replica.NewNode(svc, wal, replica.Config{Role: replica.RolePrimary})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(node.Handler())
	b.Cleanup(func() { hs.Close(); node.Close(); svc.Close(); wal.Close() })
	if _, err := server.NewClient(hs.URL).Append(d1); err != nil {
		b.Fatal(err)
	}
	head := wal.LastSeq()
	slots := make([]int, shard.NumSlots)
	for i := range slots {
		slots[i] = i
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tgtGM, err := historygraph.Open(historygraph.Options{LeafEventlistSize: L})
		if err != nil {
			b.Fatal(err)
		}
		tgtSvc := server.New(tgtGM, server.Config{CacheSize: 8})
		tgtWAL, err := replica.OpenLog(filepath.Join(dir, fmt.Sprintf("tgt-%d.wal", i)))
		if err != nil {
			b.Fatal(err)
		}
		tgtNode, err := replica.NewNode(tgtSvc, tgtWAL, replica.Config{Role: replica.RolePrimary})
		if err != nil {
			b.Fatal(err)
		}
		tgtSrv := httptest.NewServer(tgtNode.Handler())
		b.StartTimer()

		if _, err := replica.Migrate(ctx, http.DefaultClient, tgtSrv.URL, replica.MigrateRequest{
			Sources: []replica.MigrateSource{{URLs: []string{hs.URL}, Slots: slots}},
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := replica.Migrate(ctx, http.DefaultClient, tgtSrv.URL, replica.MigrateRequest{
			Finalize: []uint64{head},
		}); err != nil {
			b.Fatal(err)
		}
		for {
			st, err := replica.MigrationStatus(ctx, http.DefaultClient, tgtSrv.URL)
			if err != nil {
				b.Fatal(err)
			}
			if st.Error != "" {
				b.Fatal(st.Error)
			}
			if st.Done {
				if st.Applied != head {
					b.Fatalf("migrated %d of %d events", st.Applied, head)
				}
				break
			}
			time.Sleep(time.Millisecond)
		}

		b.StopTimer()
		if _, err := replica.Migrate(ctx, http.DefaultClient, tgtSrv.URL, replica.MigrateRequest{Stop: true}); err != nil {
			b.Fatal(err)
		}
		tgtSrv.Close()
		tgtNode.Close()
		tgtSvc.Close()
		tgtWAL.Close()
		tgtGM.Close()
		b.StartTimer()
	}
}
